"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args(["join", "--epsilon", "0.1"])
    assert args.algorithm == "epsilon-kdb"
    assert args.dataset == "clusters"
    assert args.points == 10_000


def test_bare_flags_imply_join(capsys):
    code = main(["--epsilon", "0.3", "--dataset", "uniform", "--points", "100",
                 "--dims", "3"])
    assert code == 0
    assert "pairs:" in capsys.readouterr().out


def test_epsilon_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["join"])


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "join" in capsys.readouterr().out


def test_compare_runs_all_algorithms(capsys):
    code = main(
        [
            "compare",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "250",
            "--dims",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    for name in ("epsilon-kdb", "rtree", "rplus", "zorder", "sort-merge",
                 "grid", "brute-force"):
        assert name in out


def test_compare_skip(capsys):
    code = main(
        [
            "compare",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "200",
            "--dims",
            "3",
            "--skip",
            "brute-force",
            "--skip",
            "grid",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "brute-force" not in out
    assert "epsilon-kdb" in out


def test_run_small_join(capsys):
    code = main(
        [
            "--epsilon",
            "0.2",
            "--dataset",
            "uniform",
            "--points",
            "300",
            "--dims",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pairs:" in out
    assert "distance computations:" in out


@pytest.mark.parametrize("algorithm", ["rtree", "sort-merge", "grid", "brute-force"])
def test_run_every_algorithm(algorithm, capsys):
    code = main(
        [
            "--epsilon",
            "0.3",
            "--algorithm",
            algorithm,
            "--dataset",
            "uniform",
            "--points",
            "200",
            "--dims",
            "3",
        ]
    )
    assert code == 0
    assert algorithm in capsys.readouterr().out


def test_dataset_generators(capsys):
    for dataset in ("clusters", "timeseries", "images"):
        code = main(
            [
                "--epsilon",
                "0.5",
                "--dataset",
                dataset,
                "--points",
                "150",
                "--dims",
                "8",
            ]
        )
        assert code == 0


def test_output_file(tmp_path, capsys):
    target = tmp_path / "pairs.npy"
    code = main(
        [
            "--epsilon",
            "0.4",
            "--dataset",
            "uniform",
            "--points",
            "200",
            "--dims",
            "3",
            "--output",
            str(target),
        ]
    )
    assert code == 0
    pairs = np.load(target)
    assert pairs.ndim == 2 and pairs.shape[1] == 2


def test_input_npy_file(tmp_path, capsys):
    points = np.random.default_rng(0).random((120, 5))
    source = tmp_path / "points.npy"
    np.save(source, points)
    code = main(["--epsilon", "0.3", "--input", str(source)])
    assert code == 0
    assert "120 points" in capsys.readouterr().out


def test_search_random_queries(capsys):
    code = main(
        [
            "search",
            "--epsilon",
            "0.2",
            "--dataset",
            "clusters",
            "--points",
            "400",
            "--dims",
            "6",
            "--queries",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "built epsilon-kdB tree" in out
    assert out.count("query ") == 4


def test_search_explicit_query(capsys):
    code = main(
        [
            "search",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "300",
            "--dims",
            "3",
            "--query",
            "0.5,0.5,0.5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hits" in out


def test_input_csv_file(tmp_path, capsys):
    points = np.random.default_rng(1).random((50, 3))
    source = tmp_path / "points.csv"
    np.savetxt(source, points, delimiter=",")
    code = main(["--epsilon", "0.3", "--input", str(source)])
    assert code == 0
    assert "50 points" in capsys.readouterr().out


_SMALL_JOIN = [
    "--epsilon", "0.3", "--dataset", "uniform", "--points", "200", "--dims", "3",
]


def test_stats_json_dumps_every_counter(tmp_path, capsys):
    import json

    from repro.core.result import JoinStats

    target = tmp_path / "stats.json"
    code = main([*_SMALL_JOIN, "--stats-json", str(target)])
    assert code == 0
    assert f"wrote stats to {target}" in capsys.readouterr().out
    stats = json.loads(target.read_text())
    # cascade_survivors renders as one cascade_survivors_stage{N} key per
    # stage (none here: d=3 keeps the cascade off) instead of raw; "plan"
    # carries the planner's ExecutionPlan, not a JoinStats counter.
    expected = set(JoinStats.__dataclass_fields__) - {"cascade_survivors"}
    stage_keys = {k for k in stats if k.startswith("cascade_survivors_stage")}
    assert set(stats) - stage_keys - {"plan"} == expected
    assert stats["pairs_emitted"] > 0
    assert stats["plan"]["chosen"] == stats["planned_strategy"]


def test_trace_jsonl_artifact(tmp_path, capsys):
    from repro.obs import load_jsonl
    from repro.obs.export import SPAN_SCHEMA_KEYS

    target = tmp_path / "trace.jsonl"
    code = main([*_SMALL_JOIN, "--trace", str(target)])
    assert code == 0
    assert "trace spans" in capsys.readouterr().out
    spans = load_jsonl(str(target))
    names = {s["name"] for s in spans}
    assert {"cli-join", "build", "self-join-traversal"} <= names
    for span in spans:
        assert set(span) == set(SPAN_SCHEMA_KEYS)


def test_trace_chrome_artifact(tmp_path):
    import json

    target = tmp_path / "trace.json"
    code = main(
        [*_SMALL_JOIN, "--trace", str(target), "--trace-format", "chrome"]
    )
    assert code == 0
    doc = json.loads(target.read_text())
    assert doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i"}


def test_trace_summary_prints_phase_tree(capsys):
    code = main([*_SMALL_JOIN, "--trace-summary"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cli-join" in out
    assert "└─" in out
    # the ordinary stat lines are still there
    assert "pairs:" in out
    assert "distance computations:" in out


def test_untraced_join_prints_no_tree(capsys):
    code = main(_SMALL_JOIN)
    assert code == 0
    assert "cli-join" not in capsys.readouterr().out


# ----------------------------------------------------------------------
# join-stream: the incremental session driven from JSONL update batches
# ----------------------------------------------------------------------
def _write_updates(tmp_path, rows):
    import json

    path = tmp_path / "updates.jsonl"
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))
    return str(path)


def test_join_stream_basic(tmp_path, capsys):
    rng = np.random.default_rng(0)
    rows = [
        {"op": "insert", "points": rng.random((40, 3)).tolist()},
        {"op": "delete", "ids": list(range(5))},
        ["insert", rng.random((10, 3)).tolist()],  # tuple form also parses
    ]
    code = main(
        [
            "join-stream",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "100",
            "--dims",
            "3",
            "--updates",
            _write_updates(tmp_path, rows),
            "--delta-threshold",
            "60",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "seeding session with 100 points" in out
    assert "[seed] insert 100 points (ids 0..99)" in out
    assert "[2] delete 5 ids:" in out
    assert "update batches applied:" in out
    assert "pairs retracted:" in out
    assert "estimated join size:" in out
    assert "compactions:" in out  # the 100-point seed crosses threshold 60


def test_join_stream_output_matches_batch_join(tmp_path):
    import json

    from repro import similarity_join

    rng = np.random.default_rng(1)
    batches = [rng.random((30, 4)) for _ in range(3)]
    rows = [{"op": "insert", "points": batch.tolist()} for batch in batches]
    pairs_path = tmp_path / "pairs.npy"
    stats_path = tmp_path / "stats.json"
    code = main(
        [
            "join-stream",
            "--epsilon",
            "0.35",
            "--no-initial",
            "--updates",
            _write_updates(tmp_path, rows),
            "--output",
            str(pairs_path),
            "--stats-json",
            str(stats_path),
        ]
    )
    assert code == 0
    pairs = np.load(pairs_path)
    # Pure inserts: session ids are exactly the stacked-array positions,
    # so the stream must reproduce the batch join over all batches.
    expected = similarity_join(np.vstack(batches), epsilon=0.35)
    assert np.array_equal(pairs, expected)
    stats = json.loads(stats_path.read_text())
    assert stats["updates_applied"] == 3
    assert stats["pairs_emitted"] == len(pairs)
    assert stats["estimated_join_size"] >= 0.0


def test_join_stream_trace_summary(tmp_path, capsys):
    rng = np.random.default_rng(2)
    rows = [{"op": "insert", "points": rng.random((20, 3)).tolist()}]
    code = main(
        [
            "join-stream",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "60",
            "--dims",
            "3",
            "--updates",
            _write_updates(tmp_path, rows),
            "--delta-threshold",
            "30",
            "--trace-summary",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "delta-join" in out
    assert "estimate" in out
    assert "compact" in out


def test_join_stream_invalid_json_names_line(tmp_path, capsys):
    """A malformed line produces a one-line file:line:reason error on
    stderr and exit code 2 — never a traceback."""
    path = tmp_path / "updates.jsonl"
    path.write_text('{"op": "insert", "points": [[0.1]]}\nnot json\n')
    code = main(
        [
            "join-stream",
            "--epsilon",
            "0.3",
            "--no-initial",
            "--updates",
            str(path),
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert err.startswith("error: ")
    assert f"{path}:2: invalid JSON" in err


def test_join_stream_bad_op_names_line(tmp_path, capsys):
    path = tmp_path / "updates.jsonl"
    path.write_text('{"op": "insert", "points": [[0.1]]}\n{"op": "upsert"}\n')
    code = main(
        [
            "join-stream",
            "--epsilon",
            "0.3",
            "--no-initial",
            "--updates",
            str(path),
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert f"{path}:2: " in err
    assert "upsert" in err


def test_join_stream_nan_batch_names_line(tmp_path, capsys):
    path = tmp_path / "updates.jsonl"
    path.write_text('{"op": "insert", "points": [[0.1, null]]}\n')
    code = main(
        [
            "join-stream",
            "--epsilon",
            "0.3",
            "--no-initial",
            "--updates",
            str(path),
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1
    assert f"{path}:1: " in err
    assert "NaN" in err


class TestPersistCli:
    def _stream(self, tmp_path, name, lines):
        path = tmp_path / name
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_join_stream_persist_and_resume(self, tmp_path, capsys):
        updates = self._stream(
            tmp_path,
            "ups.jsonl",
            [
                '{"op": "insert", "points": [[0.1, 0.1], [0.12, 0.11], [0.9, 0.9]]}',
                '{"op": "delete", "ids": [2]}',
            ],
        )
        session_dir = str(tmp_path / "session")
        code = main(
            [
                "join-stream",
                "--epsilon",
                "0.1",
                "--no-initial",
                "--updates",
                updates,
                "--persist",
                session_dir,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 surviving pairs over 2 live points" in out

        more = self._stream(
            tmp_path, "more.jsonl", ['{"op": "insert", "points": [[0.11, 0.1]]}']
        )
        code = main(
            [
                "join-stream",
                "--epsilon",
                "0.1",
                "--updates",
                more,
                "--persist",
                session_dir,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed session" in out
        assert "2 WAL records replayed" in out
        assert "3 surviving pairs over 3 live points" in out

    def test_join_open_reports_recovery(self, tmp_path, capsys):
        updates = self._stream(
            tmp_path,
            "ups.jsonl",
            ['{"op": "insert", "points": [[0.1, 0.1], [0.15, 0.1]]}'],
        )
        session_dir = str(tmp_path / "session")
        pairs_path = str(tmp_path / "pairs.npy")
        stats_path = str(tmp_path / "stats.json")
        assert (
            main(
                [
                    "join-stream",
                    "--epsilon",
                    "0.1",
                    "--no-initial",
                    "--updates",
                    updates,
                    "--persist",
                    session_dir,
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "join-open",
                session_dir,
                "--output",
                pairs_path,
                "--stats-json",
                stats_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered session" in out
        assert "1 surviving pairs over 2 live points" in out
        import json

        pairs = np.load(pairs_path)
        assert pairs.tolist() == [[0, 1]]
        stats = json.loads((tmp_path / "stats.json").read_text())
        assert stats["wal_records_replayed"] == 1
        assert stats["snapshot_bytes"] > 0

    def test_join_open_missing_dir_one_line_error(self, tmp_path, capsys):
        code = main(["join-open", str(tmp_path / "nope")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("error: ")

    def test_join_stream_error_preserves_persisted_prefix(self, tmp_path, capsys):
        """A malformed line aborts with exit 2, but everything before it
        is journaled and survives a join-open."""
        updates = self._stream(
            tmp_path,
            "ups.jsonl",
            [
                '{"op": "insert", "points": [[0.2, 0.2], [0.21, 0.2]]}',
                "{broken",
            ],
        )
        session_dir = str(tmp_path / "session")
        code = main(
            [
                "join-stream",
                "--epsilon",
                "0.1",
                "--no-initial",
                "--updates",
                updates,
                "--persist",
                session_dir,
            ]
        )
        assert code == 2
        capsys.readouterr()
        assert main(["join-open", session_dir]) == 0
        out = capsys.readouterr().out
        assert "1 surviving pairs over 2 live points" in out
