"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args(["join", "--epsilon", "0.1"])
    assert args.algorithm == "epsilon-kdb"
    assert args.dataset == "clusters"
    assert args.points == 10_000


def test_bare_flags_imply_join(capsys):
    code = main(["--epsilon", "0.3", "--dataset", "uniform", "--points", "100",
                 "--dims", "3"])
    assert code == 0
    assert "pairs:" in capsys.readouterr().out


def test_epsilon_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["join"])


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "join" in capsys.readouterr().out


def test_compare_runs_all_algorithms(capsys):
    code = main(
        [
            "compare",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "250",
            "--dims",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    for name in ("epsilon-kdb", "rtree", "rplus", "zorder", "sort-merge",
                 "grid", "brute-force"):
        assert name in out


def test_compare_skip(capsys):
    code = main(
        [
            "compare",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "200",
            "--dims",
            "3",
            "--skip",
            "brute-force",
            "--skip",
            "grid",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "brute-force" not in out
    assert "epsilon-kdb" in out


def test_run_small_join(capsys):
    code = main(
        [
            "--epsilon",
            "0.2",
            "--dataset",
            "uniform",
            "--points",
            "300",
            "--dims",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "pairs:" in out
    assert "distance computations:" in out


@pytest.mark.parametrize("algorithm", ["rtree", "sort-merge", "grid", "brute-force"])
def test_run_every_algorithm(algorithm, capsys):
    code = main(
        [
            "--epsilon",
            "0.3",
            "--algorithm",
            algorithm,
            "--dataset",
            "uniform",
            "--points",
            "200",
            "--dims",
            "3",
        ]
    )
    assert code == 0
    assert algorithm in capsys.readouterr().out


def test_dataset_generators(capsys):
    for dataset in ("clusters", "timeseries", "images"):
        code = main(
            [
                "--epsilon",
                "0.5",
                "--dataset",
                dataset,
                "--points",
                "150",
                "--dims",
                "8",
            ]
        )
        assert code == 0


def test_output_file(tmp_path, capsys):
    target = tmp_path / "pairs.npy"
    code = main(
        [
            "--epsilon",
            "0.4",
            "--dataset",
            "uniform",
            "--points",
            "200",
            "--dims",
            "3",
            "--output",
            str(target),
        ]
    )
    assert code == 0
    pairs = np.load(target)
    assert pairs.ndim == 2 and pairs.shape[1] == 2


def test_input_npy_file(tmp_path, capsys):
    points = np.random.default_rng(0).random((120, 5))
    source = tmp_path / "points.npy"
    np.save(source, points)
    code = main(["--epsilon", "0.3", "--input", str(source)])
    assert code == 0
    assert "120 points" in capsys.readouterr().out


def test_search_random_queries(capsys):
    code = main(
        [
            "search",
            "--epsilon",
            "0.2",
            "--dataset",
            "clusters",
            "--points",
            "400",
            "--dims",
            "6",
            "--queries",
            "4",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "built epsilon-kdB tree" in out
    assert out.count("query ") == 4


def test_search_explicit_query(capsys):
    code = main(
        [
            "search",
            "--epsilon",
            "0.3",
            "--dataset",
            "uniform",
            "--points",
            "300",
            "--dims",
            "3",
            "--query",
            "0.5,0.5,0.5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hits" in out


def test_input_csv_file(tmp_path, capsys):
    points = np.random.default_rng(1).random((50, 3))
    source = tmp_path / "points.csv"
    np.savetxt(source, points, delimiter=",")
    code = main(["--epsilon", "0.3", "--input", str(source)])
    assert code == 0
    assert "50 points" in capsys.readouterr().out


_SMALL_JOIN = [
    "--epsilon", "0.3", "--dataset", "uniform", "--points", "200", "--dims", "3",
]


def test_stats_json_dumps_every_counter(tmp_path, capsys):
    import json

    from repro.core.result import JoinStats

    target = tmp_path / "stats.json"
    code = main([*_SMALL_JOIN, "--stats-json", str(target)])
    assert code == 0
    assert f"wrote stats to {target}" in capsys.readouterr().out
    stats = json.loads(target.read_text())
    # cascade_survivors renders as one cascade_survivors_stage{N} key per
    # stage (none here: d=3 keeps the cascade off) instead of raw.
    expected = set(JoinStats.__dataclass_fields__) - {"cascade_survivors"}
    stage_keys = {k for k in stats if k.startswith("cascade_survivors_stage")}
    assert set(stats) - stage_keys == expected
    assert stats["pairs_emitted"] > 0


def test_trace_jsonl_artifact(tmp_path, capsys):
    from repro.obs import load_jsonl
    from repro.obs.export import SPAN_SCHEMA_KEYS

    target = tmp_path / "trace.jsonl"
    code = main([*_SMALL_JOIN, "--trace", str(target)])
    assert code == 0
    assert "trace spans" in capsys.readouterr().out
    spans = load_jsonl(str(target))
    names = {s["name"] for s in spans}
    assert {"cli-join", "build", "self-join-traversal"} <= names
    for span in spans:
        assert set(span) == set(SPAN_SCHEMA_KEYS)


def test_trace_chrome_artifact(tmp_path):
    import json

    target = tmp_path / "trace.json"
    code = main(
        [*_SMALL_JOIN, "--trace", str(target), "--trace-format", "chrome"]
    )
    assert code == 0
    doc = json.loads(target.read_text())
    assert doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} <= {"X", "i"}


def test_trace_summary_prints_phase_tree(capsys):
    code = main([*_SMALL_JOIN, "--trace-summary"])
    assert code == 0
    out = capsys.readouterr().out
    assert "cli-join" in out
    assert "└─" in out
    # the ordinary stat lines are still there
    assert "pairs:" in out
    assert "distance computations:" in out


def test_untraced_join_prints_no_tree(capsys):
    code = main(_SMALL_JOIN)
    assert code == 0
    assert "cli-join" not in capsys.readouterr().out
