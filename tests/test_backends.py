"""Tests for the pluggable kernel backends and the leaf batch queue.

The contract: backend choice (``kernel_backend="auto" | "numpy" |
"numba"``) is a pure runtime performance knob — every backend, the
auto/env resolution, the numba-missing fallback, and any tiling of the
candidate stream through :class:`LeafBatchQueue` must produce
byte-identical pairs and identical cascade survivor counters.
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _oracles import assert_same_pairs
from repro import JoinSpec, similarity_join
from repro.core import backends as backends_module
from repro.core.backends import (
    DEFAULT_TILE_ROWS,
    LeafBatchQueue,
    NumbaBackend,
    NumpyBackend,
    available_kernel_backends,
    numba_available,
    resolve_kernel_backend,
)
from repro.core.join import epsilon_kdb_self_join
from repro.core.kernels import build_kernel_context
from repro.core.result import JoinStats
from repro.datasets import gaussian_clusters
from repro.errors import ConfigError


@pytest.fixture(autouse=True)
def _reset_one_time_logs(monkeypatch):
    """Each test sees fresh once-only resolution logging state."""
    monkeypatch.setattr(backends_module, "_AUTO_LOGGED", False)
    monkeypatch.setattr(backends_module, "_FALLBACK_WARNED", False)


# ----------------------------------------------------------------------
# selection and validation
# ----------------------------------------------------------------------
class TestResolution:
    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            JoinSpec(epsilon=0.3, kernel_backend="cupy")

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ConfigError, match="valid values"):
            resolve_kernel_backend("fortran")

    def test_mutated_cascade_mode_rejected(self):
        """A spec whose cascade mode was mutated past validation is
        caught at context-build time with the valid modes listed."""
        spec = JoinSpec(epsilon=0.3)
        spec.cascade = "sometimes"
        points = np.random.default_rng(0).random((50, 10))
        with pytest.raises(ConfigError, match="'auto', 'on', 'off'"):
            build_kernel_context(spec, points)

    def test_available_backends(self):
        names = available_kernel_backends()
        assert names[0] == "numpy"
        assert ("numba" in names) == numba_available()

    def test_explicit_numpy_always_resolves(self):
        assert resolve_kernel_backend("numpy").name == "numpy"

    def test_auto_prefers_numba_when_available(self, monkeypatch):
        monkeypatch.delenv(backends_module._ENV_BACKEND, raising=False)
        expected = "numba" if numba_available() else "numpy"
        assert resolve_kernel_backend("auto").name == expected

    def test_auto_resolution_logged_once(self, monkeypatch, caplog):
        monkeypatch.delenv(backends_module._ENV_BACKEND, raising=False)
        with caplog.at_level(logging.INFO, logger="repro.kernels"):
            resolve_kernel_backend("auto")
            resolve_kernel_backend("auto")
        hits = [r for r in caplog.records if "resolved to" in r.message]
        assert len(hits) == 1

    def test_env_override_steers_auto(self, monkeypatch):
        monkeypatch.setenv(backends_module._ENV_BACKEND, "numpy")
        assert resolve_kernel_backend("auto").name == "numpy"

    def test_env_override_rejected_when_invalid(self, monkeypatch):
        monkeypatch.setenv(backends_module._ENV_BACKEND, "gpu")
        with pytest.raises(ConfigError, match="REPRO_KERNEL_BACKEND"):
            resolve_kernel_backend("auto")

    def test_env_does_not_override_explicit_choice(self, monkeypatch):
        monkeypatch.setenv(backends_module._ENV_BACKEND, "numba")
        assert resolve_kernel_backend("numpy").name == "numpy"

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_explicit_numba_falls_back_with_one_warning(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert resolve_kernel_backend("numba").name == "numpy"
            assert resolve_kernel_backend("numba").name == "numpy"
        hits = [r for r in caplog.records if "falling back" in r.message]
        assert len(hits) == 1

    def test_backend_excluded_from_fingerprint(self):
        base = JoinSpec(epsilon=0.3)
        routed = JoinSpec(epsilon=0.3, kernel_backend="numpy")
        assert base.structural_dict() == routed.structural_dict()


# ----------------------------------------------------------------------
# the batched leaf work-queue
# ----------------------------------------------------------------------
def _parity_filter(calls):
    """Deterministic per-row verdict that records invocation sizes."""

    def filter_rows(rows_a, rows_b):
        calls.append(len(rows_a))
        return (rows_a + rows_b) % 3 != 0

    return filter_rows


class TestLeafBatchQueue:
    def test_rejects_degenerate_tile(self):
        with pytest.raises(ConfigError, match="tile_rows"):
            LeafBatchQueue(lambda a, b: a == b, lambda a, b: None, tile_rows=0)

    def test_tiling_is_invisible_in_output(self):
        rng = np.random.default_rng(7)
        chunks = [
            (rng.integers(0, 500, size=m), rng.integers(0, 500, size=m))
            for m in (3, 17, 1, 40, 0, 9)
        ]

        def run(tile_rows):
            calls, out = [], []
            queue = LeafBatchQueue(
                _parity_filter(calls),
                lambda a, b: out.append((a, b)),
                tile_rows=tile_rows,
            )
            for rows_a, rows_b in chunks:
                queue.add(rows_a, rows_b)
            queue.flush()
            left = np.concatenate([a for a, _ in out]) if out else np.empty(0)
            right = np.concatenate([b for _, b in out]) if out else np.empty(0)
            return left, right, calls

        big_l, big_r, big_calls = run(tile_rows=10_000)
        small_l, small_r, small_calls = run(tile_rows=7)
        assert len(big_calls) == 1
        assert len(small_calls) > 1
        assert all(c <= 7 for c in small_calls)
        np.testing.assert_array_equal(big_l, small_l)
        np.testing.assert_array_equal(big_r, small_r)

    def test_nothing_emitted_before_flush(self):
        out = []
        queue = LeafBatchQueue(
            lambda a, b: np.ones(len(a), dtype=bool),
            lambda a, b: out.append((a, b)),
            tile_rows=100,
        )
        queue.add(np.arange(5), np.arange(5))
        assert queue.pending == 5
        assert not out
        queue.flush()
        assert queue.pending == 0
        assert len(out) == 1
        queue.flush()  # idempotent on empty buffer
        assert len(out) == 1

    def test_emitted_arrays_do_not_alias_tile_buffers(self):
        out = []
        queue = LeafBatchQueue(
            lambda a, b: np.ones(len(a), dtype=bool),
            lambda a, b: out.append((a, b)),
            tile_rows=4,
        )
        queue.add(np.array([1, 2, 3, 4]), np.array([5, 6, 7, 8]))
        first = (out[0][0].copy(), out[0][1].copy())
        queue.add(np.array([90, 91, 92, 93]), np.array([94, 95, 96, 97]))
        np.testing.assert_array_equal(out[0][0], first[0])
        np.testing.assert_array_equal(out[0][1], first[1])


# ----------------------------------------------------------------------
# backend exactness and stats
# ----------------------------------------------------------------------
def _candidate_rows(n, m, seed):
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=m), rng.integers(0, n, size=m)


class TestBackends:
    def test_join_stats_record_backend_and_tiling(self):
        points = gaussian_clusters(400, 12, clusters=4, sigma=0.08, seed=3)
        result = epsilon_kdb_self_join(
            points, JoinSpec(epsilon=0.5, kernel_backend="numpy")
        )
        stats = result.stats
        assert stats.kernel_backend == "numpy"
        assert stats.kernel_blocks > 0
        assert stats.kernel_tile_rows == DEFAULT_TILE_ROWS
        assert stats.kernel_seconds >= 0.0
        # The public API accepts the knob and output is unchanged by it.
        pairs = similarity_join(points, epsilon=0.5, kernel_backend="numpy")
        np.testing.assert_array_equal(pairs, result.pairs)

    def test_numba_chunk_falls_back_to_numpy_for_unsupported_metric(
        self, monkeypatch
    ):
        """An unsupported metric must route each tile through the numpy
        cascade with identical masks and survivor counters — this is the
        path that keeps ``kernel_backend="numba"`` universally safe."""
        points = gaussian_clusters(300, 12, clusters=4, sigma=0.08, seed=5)
        spec = JoinSpec(epsilon=0.5, kernel_backend="numpy")
        context = build_kernel_context(spec, points)
        assert context is not None
        monkeypatch.setattr(backends_module, "_metric_code", lambda metric: None)
        rows_a, rows_b = _candidate_rows(len(points), 2_000, seed=11)

        def fresh_stats():
            return JoinStats(cascade_survivors=[0] * context.plan.n_stages)

        stats_numpy = fresh_stats()
        stats_numba = fresh_stats()
        mask_numpy = NumpyBackend().filter_chunk(
            context, rows_a, rows_b, stats_numpy
        )
        mask_numba = NumbaBackend().filter_chunk(
            context, rows_a, rows_b, stats_numba
        )
        np.testing.assert_array_equal(mask_numpy, mask_numba)
        assert stats_numpy.cascade_survivors == stats_numba.cascade_survivors

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_chunk_matches_numpy_chunk(self):
        points = gaussian_clusters(300, 16, clusters=4, sigma=0.08, seed=9)
        spec = JoinSpec(epsilon=0.6, kernel_backend="numpy")
        context = build_kernel_context(spec, points)
        assert context is not None
        rows_a, rows_b = _candidate_rows(len(points), 5_000, seed=13)
        stats_numpy = JoinStats(cascade_survivors=[0] * context.plan.n_stages)
        stats_numba = JoinStats(cascade_survivors=[0] * context.plan.n_stages)
        mask_numpy = NumpyBackend().filter_chunk(
            context, rows_a, rows_b, stats_numpy
        )
        mask_numba = NumbaBackend().filter_chunk(
            context, rows_a, rows_b, stats_numba
        )
        np.testing.assert_array_equal(mask_numpy, mask_numba)
        assert stats_numpy.cascade_survivors == stats_numba.cascade_survivors

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=60, max_value=260),
        d=st.integers(min_value=8, max_value=20),
        metric=st.sampled_from(["l1", "l2", "linf", 1.5]),
        eps=st.sampled_from([0.3, 0.6, 1.0]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_backends_identical_over_random_specs(self, n, d, metric, eps, seed):
        """Property: numpy and numba joins agree on pairs *and* on the
        cascade survivor funnel across random workloads and metrics."""
        points = gaussian_clusters(n, d, clusters=4, sigma=0.08, seed=seed)
        base = epsilon_kdb_self_join(
            points, JoinSpec(epsilon=eps, metric=metric, kernel_backend="numpy")
        )
        other = epsilon_kdb_self_join(
            points, JoinSpec(epsilon=eps, metric=metric, kernel_backend="numba")
        )
        assert_same_pairs(
            other.pairs,
            base.pairs,
            f"hypothesis n={n} d={d} {metric} eps={eps} seed={seed}",
        )
        assert base.stats.cascade_survivors == other.stats.cascade_survivors
        assert base.pairs.tobytes() == other.pairs.tobytes()
