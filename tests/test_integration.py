"""Cross-module integration tests.

These run the whole stack — workload generators, every join algorithm
including the external-memory path, and an *independent* oracle
(scipy's cKDTree, when available) — on one realistic mid-size problem,
and check end-to-end determinism.
"""

import numpy as np
import pytest

from repro import (
    ALGORITHMS,
    JoinSpec,
    external_self_join,
    similarity_join,
)
from repro.datasets import (
    color_histograms,
    gaussian_clusters,
    timeseries_features,
)

try:
    from scipy.spatial import cKDTree

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    HAVE_SCIPY = False


@pytest.fixture(scope="module")
def workload():
    return gaussian_clusters(4000, 12, clusters=8, sigma=0.05, seed=2026)


EPS = 0.12


@pytest.fixture(scope="module")
def reference_pairs(workload):
    return similarity_join(workload, epsilon=EPS, algorithm="brute-force")


class TestAllAlgorithmsAgreeAtScale:
    @pytest.mark.parametrize(
        "algorithm", [a for a in sorted(ALGORITHMS) if a != "brute-force"]
    )
    def test_agreement(self, algorithm, workload, reference_pairs):
        pairs = similarity_join(workload, epsilon=EPS, algorithm=algorithm)
        assert pairs.shape == reference_pairs.shape
        assert (pairs == reference_pairs).all()

    def test_external_agrees(self, workload, reference_pairs):
        report = external_self_join(
            workload, JoinSpec(epsilon=EPS), memory_points=700
        )
        assert report.stripes > 1  # the memory constraint actually bound
        assert report.pairs.shape == reference_pairs.shape
        assert (report.pairs == reference_pairs).all()

    @pytest.mark.skipif(not HAVE_SCIPY, reason="scipy unavailable")
    def test_independent_scipy_oracle(self, workload, reference_pairs):
        """cKDTree is a fully independent implementation of the same
        predicate; agreeing with it rules out a shared bug between our
        brute force and the tree algorithms."""
        tree = cKDTree(workload)
        scipy_pairs = tree.query_pairs(EPS, output_type="ndarray")
        scipy_pairs = scipy_pairs[
            np.lexsort((scipy_pairs[:, 1], scipy_pairs[:, 0]))
        ]
        assert scipy_pairs.shape == reference_pairs.shape
        assert (scipy_pairs == reference_pairs).all()


class TestEndToEndDeterminism:
    def test_same_seed_same_answer(self):
        runs = []
        for _ in range(2):
            features = timeseries_features(800, length=64, seed=5)
            runs.append(similarity_join(features, epsilon=0.8))
        assert runs[0].shape == runs[1].shape
        assert (runs[0] == runs[1]).all()

    def test_image_pipeline_precision(self):
        histograms, labels = color_histograms(
            1500, bins=24, scenes=6, concentration=150.0, seed=9,
            return_labels=True,
        )
        pairs = similarity_join(histograms, epsilon=0.1, metric="l1")
        assert len(pairs) > 100
        same_scene = labels[pairs[:, 0]] == labels[pairs[:, 1]]
        assert same_scene.mean() > 0.95


class TestCrossMetricConsistency:
    """Relationships that must hold between metrics on the same data."""

    def test_lp_pair_sets_nest(self, workload):
        # d(l_inf) <= d(l2) <= d(l1): pair sets nest the opposite way.
        linf = {tuple(p) for p in similarity_join(workload, epsilon=EPS, metric="linf")}
        l2 = {tuple(p) for p in similarity_join(workload, epsilon=EPS, metric="l2")}
        l1 = {tuple(p) for p in similarity_join(workload, epsilon=EPS, metric="l1")}
        assert l1 <= l2 <= linf

    def test_epsilon_monotonicity(self, workload):
        small = {tuple(p) for p in similarity_join(workload, epsilon=0.05)}
        large = {tuple(p) for p in similarity_join(workload, epsilon=0.15)}
        assert small <= large
