"""Shared fixtures for the test suite.

The comparison oracles live in :mod:`_oracles`; the re-export below
keeps historical ``from conftest import ...`` call sites working.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from _oracles import (  # noqa: F401  (re-exported for older imports)
    assert_same_pairs,
    oracle_self_pairs,
    oracle_two_set_pairs,
)

# Hypothesis profiles: "dev" (default) keeps full randomized search;
# "ci" (HYPOTHESIS_PROFILE=ci, used by the streaming-smoke CI job) is
# derandomized so the stateful incremental suite is reproducible and
# time-bounded on shared runners.
settings.register_profile("dev", deadline=None)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    max_examples=25,
    stateful_step_count=15,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20260706)


@pytest.fixture(scope="session")
def small_uniform():
    """1000 uniform points in 8 dimensions."""
    return np.random.default_rng(11).random((1000, 8))


@pytest.fixture(scope="session")
def small_clusters():
    from repro.datasets import gaussian_clusters

    return gaussian_clusters(1200, 10, clusters=6, sigma=0.04, seed=5)
