"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import JoinSpec
from repro.baselines import brute_force_join, brute_force_self_join


def oracle_self_pairs(points: np.ndarray, spec: JoinSpec) -> np.ndarray:
    """Canonical self-join answer via the blocked nested loop."""
    return brute_force_self_join(points, spec).pairs


def oracle_two_set_pairs(
    points_r: np.ndarray, points_s: np.ndarray, spec: JoinSpec
) -> np.ndarray:
    """Canonical two-set join answer via the blocked nested loop."""
    return brute_force_join(points_r, points_s, spec).pairs


def assert_same_pairs(actual: np.ndarray, expected: np.ndarray, label: str = ""):
    """Assert two canonical (sorted) pair arrays are identical."""
    assert actual.shape == expected.shape, (
        f"{label}: expected {len(expected)} pairs, got {len(actual)}"
    )
    if len(expected):
        assert (actual == expected).all(), f"{label}: pair sets differ"


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20260706)


@pytest.fixture(scope="session")
def small_uniform():
    """1000 uniform points in 8 dimensions."""
    return np.random.default_rng(11).random((1000, 8))


@pytest.fixture(scope="session")
def small_clusters():
    from repro.datasets import gaussian_clusters

    return gaussian_clusters(1200, 10, clusters=6, sigma=0.04, seed=5)
