"""White-box tests for the epsilon-kdB join traversal internals."""

import numpy as np
import pytest

from repro import EpsilonKdbTree, JoinSpec, PairCounter, epsilon_kdb_self_join
from repro.core.epsilon_kdb import InternalNode, LeafNode
from repro.core.join import _flatten, _JoinContext, _leaf_vs_internal
from repro.datasets import gaussian_clusters, uniform_points


class TestFlatten:
    def test_leaf_becomes_tuple(self):
        points = np.random.default_rng(0).random((20, 3))
        tree = EpsilonKdbTree.build(points, JoinSpec(epsilon=0.5))
        leaf = next(tree.iter_leaves())
        flat = _flatten(leaf)
        assert isinstance(flat, tuple)
        indices, values = flat
        assert (values == points[indices, tree.sort_dim]).all()

    def test_internal_passes_through(self):
        points = np.random.default_rng(1).random((500, 4))
        tree = EpsilonKdbTree.build(points, JoinSpec(epsilon=0.1, leaf_size=16))
        assert isinstance(tree.root, InternalNode)
        assert _flatten(tree.root) is tree.root


class TestLeafFragmentFiltering:
    def test_fragments_preserve_sort_order(self):
        """The leaf-vs-internal path filters by cell mask; the surviving
        fragment must stay sorted on the sort dimension (the sweep
        assumes it)."""
        rng = np.random.default_rng(2)
        points = rng.random((800, 4))
        spec = JoinSpec(epsilon=0.15, leaf_size=32)
        tree = EpsilonKdbTree.build(points, spec)
        # Take any real leaf and filter it the way the traversal does.
        leaf = max(tree.iter_leaves(), key=lambda l: l.size)
        indices, values = _flatten(leaf)
        cells = tree.grid.cell_of(points[indices, 0], 0)
        for target in np.unique(cells):
            mask = np.abs(cells - target) <= 1
            fragment_values = values[mask]
            assert (np.diff(fragment_values) >= 0).all()

    def test_leaf_vs_internal_counts_node_visits(self):
        rng = np.random.default_rng(3)
        points = rng.random((2000, 6))
        spec = JoinSpec(epsilon=0.1, leaf_size=64)
        tree = EpsilonKdbTree.build(points, spec)
        counter = PairCounter()
        ctx = _JoinContext(points, points, tree.grid, spec, counter, True)
        # Find a (leaf, internal) sibling pair in the real tree.
        found = False
        stack = [tree.root]
        while stack and not found:
            node = stack.pop()
            if isinstance(node, InternalNode):
                children = list(node.children.values())
                leaves = [c for c in children if isinstance(c, LeafNode)]
                internals = [c for c in children if isinstance(c, InternalNode)]
                if leaves and internals:
                    before = ctx.stats.node_pairs_visited
                    _leaf_vs_internal(
                        ctx, _flatten(leaves[0]), internals[0],
                        leaf_on_left=True,
                    )
                    assert ctx.stats.node_pairs_visited > before
                    found = True
                stack.extend(internals)
        if not found:
            pytest.skip("tree shape did not produce a mixed sibling pair")


class TestTraversalAccounting:
    def test_leaf_joins_counted(self):
        points = uniform_points(3000, 8, seed=5)
        result = epsilon_kdb_self_join(points, JoinSpec(epsilon=0.2, leaf_size=64))
        info = EpsilonKdbTree.build(points, JoinSpec(epsilon=0.2, leaf_size=64)).describe()
        # At least one self-join per leaf.
        assert result.stats.leaf_joins >= info.leaves

    def test_node_pairs_scale_with_tree_size(self):
        small = epsilon_kdb_self_join(
            uniform_points(500, 6, seed=6), JoinSpec(epsilon=0.15, leaf_size=16)
        )
        large = epsilon_kdb_self_join(
            uniform_points(5000, 6, seed=6), JoinSpec(epsilon=0.15, leaf_size=16)
        )
        assert large.stats.node_pairs_visited > small.stats.node_pairs_visited

    def test_empty_subtree_cross_is_cheap(self):
        """Two well-separated clusters: the cross joins between their
        subtrees should prune to nothing measurable."""
        rng = np.random.default_rng(7)
        left = rng.random((500, 4)) * 0.2
        right = rng.random((500, 4)) * 0.2 + 0.8
        points = np.vstack([left, right])
        result = epsilon_kdb_self_join(points, JoinSpec(epsilon=0.05, leaf_size=32))
        # Candidates should be on the order of within-cluster work only:
        # far below the all-pairs 499k.
        assert result.stats.distance_computations < 150_000


class TestDeterminism:
    def test_identical_runs_identical_everything(self):
        points = gaussian_clusters(2000, 8, seed=8)
        spec = JoinSpec(epsilon=0.1, leaf_size=64)
        first = epsilon_kdb_self_join(points, spec)
        second = epsilon_kdb_self_join(points, spec)
        assert (first.pairs == second.pairs).all()
        assert (
            first.stats.distance_computations
            == second.stats.distance_computations
        )
        assert first.stats.node_pairs_visited == second.stats.node_pairs_visited

    def test_point_order_does_not_change_pair_set(self):
        points = gaussian_clusters(1500, 6, seed=9)
        spec = JoinSpec(epsilon=0.1)
        base = epsilon_kdb_self_join(points, spec).pairs
        permutation = np.random.default_rng(10).permutation(len(points))
        shuffled = epsilon_kdb_self_join(points[permutation], spec).pairs
        # Map shuffled indices back to the original ids and canonicalize.
        remapped = permutation[shuffled]
        lo = np.minimum(remapped[:, 0], remapped[:, 1])
        hi = np.maximum(remapped[:, 0], remapped[:, 1])
        remapped = np.unique(np.column_stack([lo, hi]), axis=0)
        assert remapped.shape == base.shape
        assert (remapped == base).all()
