"""Unit tests for pair sinks and join statistics."""

import numpy as np

from repro.core.result import (
    JoinStats,
    PairCollector,
    PairCounter,
    canonicalize_self_pairs,
)


class TestPairCounter:
    def test_counts_emitted_pairs(self):
        sink = PairCounter()
        sink.emit(np.array([1, 2]), np.array([3, 4]))
        sink.emit(np.array([5]), np.array([6]))
        assert sink.count == 3

    def test_empty_emit_is_noop(self):
        sink = PairCounter()
        sink.emit(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert sink.count == 0


class TestPairCollector:
    def test_collects_and_concatenates(self):
        sink = PairCollector()
        sink.emit(np.array([1, 2]), np.array([3, 4]))
        sink.emit(np.array([5]), np.array([6]))
        left, right = sink.arrays()
        assert left.tolist() == [1, 2, 5]
        assert right.tolist() == [3, 4, 6]
        assert sink.count == 3

    def test_pairs_shape(self):
        sink = PairCollector()
        sink.emit(np.array([0]), np.array([1]))
        assert sink.pairs().shape == (1, 2)

    def test_empty_collector(self):
        sink = PairCollector()
        assert sink.pairs().shape == (0, 2)
        left, right = sink.arrays()
        assert len(left) == 0 and len(right) == 0
        assert sink.sorted_pairs().shape == (0, 2)

    def test_sorted_pairs_lexicographic(self):
        sink = PairCollector()
        sink.emit(np.array([3, 1, 1]), np.array([4, 9, 2]))
        assert sink.sorted_pairs().tolist() == [[1, 2], [1, 9], [3, 4]]

    def test_emit_copies_into_int64(self):
        sink = PairCollector()
        sink.emit(np.array([1], dtype=np.int32), np.array([2], dtype=np.int32))
        left, right = sink.arrays()
        assert left.dtype == np.int64 and right.dtype == np.int64


class TestJoinStats:
    def test_merge_accumulates_every_counter(self):
        a = JoinStats(
            distance_computations=1,
            node_pairs_visited=2,
            leaf_joins=3,
            pairs_emitted=4,
            pages_read=5,
            pages_written=6,
        )
        b = JoinStats(
            distance_computations=10,
            node_pairs_visited=20,
            leaf_joins=30,
            pairs_emitted=40,
            pages_read=50,
            pages_written=60,
        )
        a.merge(b)
        assert (
            a.distance_computations,
            a.node_pairs_visited,
            a.leaf_joins,
            a.pairs_emitted,
            a.pages_read,
            a.pages_written,
        ) == (11, 22, 33, 44, 55, 66)


class TestCanonicalize:
    def test_orients_dedupes_and_sorts(self):
        left = np.array([5, 2, 5, 7])
        right = np.array([2, 5, 2, 7])
        pairs = canonicalize_self_pairs(left, right)
        # (5,2) and (2,5) collapse to one (2,5); (7,7) is dropped.
        assert pairs.tolist() == [[2, 5]]

    def test_empty_input(self):
        pairs = canonicalize_self_pairs(np.array([]), np.array([]))
        assert pairs.shape == (0, 2)
