"""Unit tests for the observability subsystem (:mod:`repro.obs`).

Covers the tracer (nesting, attributes, events, cross-process
stitching), the export sinks (JSONL round-trip, Chrome ``trace_event``,
the phase tree), the metrics registry, the profiling hooks, and the
disabled-path cost contract.
"""

import json
import threading
import time

import pytest

from repro.core.result import JoinStats
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MemorySampler,
    MetricsRegistry,
    NullTracer,
    Tracer,
    format_tree,
    load_jsonl,
    profiled_span,
    read_rss_bytes,
    to_chrome_trace,
    trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import SPAN_SCHEMA_KEYS


class TestSpanNesting:
    def test_nested_spans_link_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert len(tracer) == 3

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_span_ids_are_unique_across_tracers(self):
        # Pool workers create one short-lived Tracer per attempt; their
        # spans are adopted into one parent trace and must not collide.
        ids = set()
        for _ in range(5):
            tracer = Tracer()
            with tracer.span("root"):
                pass
            ids.add(tracer.export()[0]["span_id"])
        assert len(ids) == 5

    def test_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("work", points=100) as sp:
            sp.set_attribute("pairs", 7)
            sp.add_event("checkpoint", stage=1)
        exported = tracer.export()[0]
        assert exported["attributes"] == {"points": 100, "pairs": 7}
        assert len(exported["events"]) == 1
        event = exported["events"][0]
        assert event["name"] == "checkpoint"
        assert event["attributes"] == {"stage": 1}
        assert exported["start"] <= event["time"] <= exported["end"]

    def test_duration_is_monotonic_window(self):
        tracer = Tracer()
        with tracer.span("sleep") as sp:
            time.sleep(0.01)
        assert sp.duration >= 0.01
        assert sp.end > sp.start

    def test_record_span_parents_to_current(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.record_span("past", 1.0, 2.0, outcome="timed-out")
        recorded = [s for s in tracer.export() if s["name"] == "past"][0]
        assert recorded["parent_id"] == outer.span_id
        assert recorded["duration"] == 1.0
        assert recorded["attributes"]["outcome"] == "timed-out"

    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            barrier.wait()
            with tracer.span(f"{name}-outer"):
                with tracer.span(f"{name}-inner"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {s["name"]: s for s in tracer.export()}
        assert len(by_name) == 4
        for name in ("t1", "t2"):
            assert (
                by_name[f"{name}-inner"]["parent_id"]
                == by_name[f"{name}-outer"]["span_id"]
            )


class TestAdoption:
    def _worker_export(self):
        """Simulate a pool worker tracing one attempt and shipping it."""
        worker = Tracer()
        with worker.span("stripe-task", task=0):
            with worker.span("build"):
                pass
            with worker.span("self-join-traversal"):
                pass
        return worker.export()

    def test_adopt_reparents_roots_to_current_span(self):
        shipped = self._worker_export()
        parent = Tracer()
        with parent.span("dispatch") as dispatch:
            parent.adopt(shipped)
        spans = {s["name"]: s for s in parent.export()}
        assert spans["stripe-task"]["parent_id"] == dispatch.span_id
        # the worker-side hierarchy below the root is preserved
        assert spans["build"]["parent_id"] == spans["stripe-task"]["span_id"]
        assert (
            spans["self-join-traversal"]["parent_id"]
            == spans["stripe-task"]["span_id"]
        )

    def test_adopt_explicit_parent_and_empty(self):
        parent = Tracer()
        parent.adopt([])  # harmless
        with parent.span("root") as root:
            pass
        parent.adopt(self._worker_export(), parent_id=root.span_id)
        spans = {s["name"]: s for s in parent.export()}
        assert spans["stripe-task"]["parent_id"] == root.span_id


class TestAmbientTracer:
    def test_default_is_disabled(self):
        assert not trace.is_enabled()
        assert trace.current_span_id() is None

    def test_activate_and_restore(self):
        tracer = Tracer()
        with trace.activate(tracer):
            assert trace.is_enabled()
            with trace.span("inside"):
                assert trace.current_span_id() is not None
        assert not trace.is_enabled()
        assert len(tracer) == 1

    def test_activate_none_disables_nested(self):
        tracer = Tracer()
        with trace.activate(tracer):
            with trace.activate(None):
                assert not trace.is_enabled()
                with trace.span("dropped"):
                    pass
            assert trace.is_enabled()
        assert len(tracer) == 0

    def test_null_span_still_measures_duration(self):
        with NullTracer().span("timed") as sp:
            time.sleep(0.005)
        assert sp.duration >= 0.005

    def test_module_functions_are_noops_when_disabled(self):
        trace.add_event("nothing")
        trace.set_attribute("k", "v")
        trace.record_span("nothing", 0.0, 1.0)
        with trace.span("nothing", attr=1) as sp:
            sp.add_event("inner")
            sp.set_attribute("k", "v")
        assert sp.attributes == {}

    def test_disabled_path_overhead_smoke(self):
        # The disabled path must stay within the same order of magnitude
        # as the bare perf_counter arithmetic it replaces.  Loose bound:
        # timing in CI is noisy, the guard is against accidental
        # collection on the null path, not micro-regressions.
        iterations = 20_000
        started = time.perf_counter()
        for _ in range(iterations):
            with trace.span("hot"):
                pass
        per_span = (time.perf_counter() - started) / iterations
        assert per_span < 50e-6, f"null span costs {per_span * 1e6:.1f}us"


class TestExports:
    def _sample_spans(self):
        tracer = Tracer()
        with tracer.span("root", points=10):
            with tracer.span("child") as child:
                child.add_event("tick", n=1)
        return tracer.export()

    def test_jsonl_round_trip_preserves_schema(self, tmp_path):
        spans = self._sample_spans()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(spans, path) == len(spans)
        loaded = load_jsonl(path)
        assert loaded == json.loads(json.dumps(spans))
        for span in loaded:
            assert set(span) == set(SPAN_SCHEMA_KEYS)

    def test_chrome_trace_shape(self):
        spans = self._sample_spans()
        doc = to_chrome_trace(spans)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == len(spans)
        assert len(instants) == 1  # the "tick" event
        by_name = {e["name"]: e for e in complete}
        root, child = by_name["root"], by_name["child"]
        # microseconds on the shared clock; child nested inside root
        assert root["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1.0
        assert root["args"]["points"] == 10
        assert child["args"]["parent_id"] == root["args"]["span_id"]

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        spans = self._sample_spans()
        path = str(tmp_path / "trace.json")
        events = write_chrome_trace(spans, path)
        with open(path) as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) == events
        assert doc["displayTimeUnit"] == "ms"

    def test_format_tree_nesting_and_events(self):
        spans = self._sample_spans()
        rendered = format_tree(spans)
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert "points=10" in lines[0]
        assert any("└─ child" in line for line in lines)
        assert any("* tick" in line for line in lines)

    def test_format_tree_orphans_become_roots(self):
        spans = self._sample_spans()
        # Drop the root: the child's parent is now absent (the shape a
        # crashed parent process would leave) — it must still render.
        orphans = [s for s in spans if s["name"] == "child"]
        rendered = format_tree(orphans)
        assert rendered.splitlines()[0].startswith("child")


class TestMetrics:
    def test_counter(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_histogram_percentiles(self):
        hist = Histogram("h")
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(100) == 100.0
        snapshot = hist.as_dict()
        assert snapshot["count"] == 100
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 100.0

    def test_registry_reuses_and_type_checks(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_registry_as_dict(self):
        registry = MetricsRegistry()
        registry.counter("reads").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("latency").observe(0.5)
        snapshot = registry.as_dict()
        assert snapshot["reads"] == {"type": "counter", "value": 2}
        assert snapshot["depth"] == {"type": "gauge", "value": 7}
        assert snapshot["latency"]["count"] == 1

    def test_ingest_stats_is_generic_over_fields(self):
        stats = JoinStats(
            distance_computations=10,
            pairs_emitted=3,
            degraded_to_serial=True,
            worker_seconds=[0.1, 0.2],
            kernel_backend="numpy",
        )
        registry = MetricsRegistry()
        registry.ingest_stats(stats)
        snapshot = registry.as_dict()
        assert snapshot["join.distance_computations"]["value"] == 10
        assert snapshot["join.pairs_emitted"]["value"] == 3
        assert snapshot["join.degraded_to_serial"] == {
            "type": "gauge",
            "value": 1.0,
        }
        assert snapshot["join.worker_seconds"]["count"] == 2
        # string fields surface as a <field>.<value> marker gauge
        assert snapshot["join.kernel_backend.numpy"] == {
            "type": "gauge",
            "value": 1.0,
        }
        # every JoinStats field landed under the prefix
        # (cascade_survivors expands to per-stage keys; empty here)
        for name, spec in JoinStats.__dataclass_fields__.items():
            if name == "cascade_survivors":
                continue
            # empty string fields (kernel_backend, planned_strategy)
            # surface only as non-empty <field>.<value> marker gauges
            if spec.type in ("str", str):
                continue
            assert f"join.{name}" in snapshot

    def test_ingest_stats_expands_cascade_stages(self):
        stats = JoinStats(cascade_candidates=9, cascade_survivors=[4, 1])
        registry = MetricsRegistry()
        registry.ingest_stats(stats)
        snapshot = registry.as_dict()
        assert snapshot["join.cascade_candidates"]["value"] == 9
        assert snapshot["join.cascade_survivors_stage1"]["value"] == 4
        assert snapshot["join.cascade_survivors_stage2"]["value"] == 1


class TestProfilingHooks:
    def test_read_rss_reports_positive(self):
        assert read_rss_bytes() > 0

    def test_memory_sampler_attaches_to_span(self):
        tracer = Tracer()
        with trace.activate(tracer):
            with trace.span("phase") as sp:
                with MemorySampler(interval=0.01):
                    time.sleep(0.03)
        assert sp.attributes["rss_peak_bytes"] > 0
        assert sp.attributes["rss_samples"] >= 2

    def test_memory_sampler_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MemorySampler(interval=0.0)

    def test_profiled_span_disabled_is_plain_span(self):
        tracer = Tracer()
        with trace.activate(tracer):
            with profiled_span("plain"):
                pass
        exported = tracer.export()[0]
        assert "profile" not in exported["attributes"]

    def test_profiled_span_attaches_profile(self):
        tracer = Tracer()
        with trace.activate(tracer):
            with profiled_span("hot", profile=True):
                sum(i * i for i in range(10_000))
        exported = tracer.export()[0]
        assert "cumulative" in exported["attributes"]["profile"]
