"""Failure-injection tests: wrong usage must fail loudly, never silently."""

import numpy as np
import pytest

from repro import EpsilonKdbTree, Grid, JoinSpec
from repro.core.join import _cross_join, _flatten
from repro.errors import DomainError, InvalidParameterError, StorageError
from repro.storage import BufferManager, PageStore


class TestGridDomainViolations:
    def test_build_with_too_small_grid_rejected(self):
        points = np.random.default_rng(0).random((50, 3))
        grid = Grid.fit(points[:10], eps=0.1)  # covers only a subset
        outside = points[np.any(points > points[:10].max(axis=0), axis=1)]
        if len(outside) == 0:
            pytest.skip("sample happened to cover the full box")
        with pytest.raises(DomainError):
            EpsilonKdbTree.build(points, JoinSpec(epsilon=0.1), grid=grid)

    def test_empty_tree_with_shared_grid_ok(self):
        points = np.random.default_rng(1).random((20, 2))
        grid = Grid.fit(points, eps=0.2)
        tree = EpsilonKdbTree.empty(points, JoinSpec(epsilon=0.2), grid=grid)
        assert len(tree) == 0


class TestTraversalMisuse:
    def test_unfinalized_leaf_rejected_by_traversal(self):
        points = np.random.default_rng(2).random((30, 2))
        spec = JoinSpec(epsilon=0.2)
        tree = EpsilonKdbTree.empty(points, spec)
        for index in range(30):
            tree.insert(index)
        # Bypassing finalize() must be caught, not silently mis-joined.
        leaf = next(tree.iter_leaves())
        with pytest.raises(InvalidParameterError):
            _flatten(leaf)

    def test_mismatched_split_orders_rejected(self):
        points = np.random.default_rng(3).random((600, 4))
        grid = Grid.fit(points, eps=0.05)
        spec_a = JoinSpec(epsilon=0.05, leaf_size=8)
        spec_b = JoinSpec(epsilon=0.05, leaf_size=8, split_order=[3, 2, 1, 0])
        tree_a = EpsilonKdbTree.build(points, spec_a, grid=grid)
        tree_b = EpsilonKdbTree.build(points, spec_b, grid=grid)

        from repro.core.join import _JoinContext
        from repro.core.result import PairCounter

        ctx = _JoinContext(points, points, grid, spec_a, PairCounter(), False)
        with pytest.raises(InvalidParameterError):
            _cross_join(ctx, tree_a.root, tree_b.root)


class TestStorageMisuse:
    def test_read_past_end(self):
        store = PageStore(page_rows=2)
        store.allocate(np.zeros((1, 1)))
        with pytest.raises(StorageError):
            store.read_page(5)

    def test_buffer_over_pinning_is_loud(self):
        store = PageStore(page_rows=2)
        pids = [store.allocate(np.zeros((1, 1))) for _ in range(2)]
        buffer = BufferManager(store, capacity=1)
        buffer.get(pids[0], pin=True)
        with pytest.raises(StorageError):
            buffer.get(pids[1])


class TestNonFiniteInputs:
    @pytest.mark.parametrize("bad_value", [np.nan, np.inf, -np.inf])
    def test_all_entry_points_reject_non_finite(self, bad_value):
        from repro import similarity_join

        points = np.random.default_rng(4).random((10, 3))
        points[3, 1] = bad_value
        with pytest.raises(InvalidParameterError):
            similarity_join(points, epsilon=0.1)

    def test_external_join_rejects_non_finite(self):
        from repro import external_self_join

        points = np.full((5, 2), np.nan)
        with pytest.raises(InvalidParameterError):
            external_self_join(points, JoinSpec(epsilon=0.1), 100)
