"""Failure-injection tests.

Two families: wrong usage must fail loudly, never silently; and
*injected* faults (via :class:`repro.core.resilience.FaultPlan`) must be
recovered from with byte-identical results, honest resilience counters,
and no leaked shared memory.
"""

import os
import pickle

import numpy as np
import pytest

from repro import (
    EpsilonKdbTree,
    FaultPlan,
    Grid,
    JoinSpec,
    external_join,
    external_self_join,
)
from repro.core import epsilon_kdb_join, epsilon_kdb_self_join
from repro.core.join import _cross_join, _flatten
from repro.core.parallel import ParallelJoinExecutor, plan_parallel_stripes
from repro.errors import (
    DomainError,
    InvalidParameterError,
    StorageError,
    TransientIoError,
    WorkerCrashError,
)
from repro.storage import BufferManager, PageStore


def _shm_listing():
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError):  # pragma: no cover
        return None


@pytest.fixture
def shm_guard():
    """Assert the test leaked no shared-memory segments."""
    before = _shm_listing()
    yield
    if before is not None:
        leaked = _shm_listing() - before
        assert not leaked, f"leaked shared memory segments: {sorted(leaked)}"


class TestGridDomainViolations:
    def test_build_with_too_small_grid_rejected(self):
        points = np.random.default_rng(0).random((50, 3))
        grid = Grid.fit(points[:10], eps=0.1)  # covers only a subset
        outside = points[np.any(points > points[:10].max(axis=0), axis=1)]
        if len(outside) == 0:
            pytest.skip("sample happened to cover the full box")
        with pytest.raises(DomainError):
            EpsilonKdbTree.build(points, JoinSpec(epsilon=0.1), grid=grid)

    def test_empty_tree_with_shared_grid_ok(self):
        points = np.random.default_rng(1).random((20, 2))
        grid = Grid.fit(points, eps=0.2)
        tree = EpsilonKdbTree.empty(points, JoinSpec(epsilon=0.2), grid=grid)
        assert len(tree) == 0


class TestTraversalMisuse:
    def test_unfinalized_leaf_rejected_by_traversal(self):
        points = np.random.default_rng(2).random((30, 2))
        spec = JoinSpec(epsilon=0.2)
        tree = EpsilonKdbTree.empty(points, spec)
        for index in range(30):
            tree.insert(index)
        # Bypassing finalize() must be caught, not silently mis-joined.
        leaf = next(tree.iter_leaves())
        with pytest.raises(InvalidParameterError):
            _flatten(leaf)

    def test_mismatched_split_orders_rejected(self):
        points = np.random.default_rng(3).random((600, 4))
        grid = Grid.fit(points, eps=0.05)
        spec_a = JoinSpec(epsilon=0.05, leaf_size=8)
        spec_b = JoinSpec(epsilon=0.05, leaf_size=8, split_order=[3, 2, 1, 0])
        tree_a = EpsilonKdbTree.build(points, spec_a, grid=grid)
        tree_b = EpsilonKdbTree.build(points, spec_b, grid=grid)

        from repro.core.join import _JoinContext
        from repro.core.result import PairCounter

        ctx = _JoinContext(points, points, grid, spec_a, PairCounter(), False)
        with pytest.raises(InvalidParameterError):
            _cross_join(ctx, tree_a.root, tree_b.root)


class TestStorageMisuse:
    def test_read_past_end(self):
        store = PageStore(page_rows=2)
        store.allocate(np.zeros((1, 1)))
        with pytest.raises(StorageError):
            store.read_page(5)

    def test_buffer_over_pinning_is_loud(self):
        store = PageStore(page_rows=2)
        pids = [store.allocate(np.zeros((1, 1))) for _ in range(2)]
        buffer = BufferManager(store, capacity=1)
        buffer.get(pids[0], pin=True)
        with pytest.raises(StorageError):
            buffer.get(pids[1])


class TestNonFiniteInputs:
    @pytest.mark.parametrize("bad_value", [np.nan, np.inf, -np.inf])
    def test_all_entry_points_reject_non_finite(self, bad_value):
        from repro import similarity_join

        points = np.random.default_rng(4).random((10, 3))
        points[3, 1] = bad_value
        with pytest.raises(InvalidParameterError):
            similarity_join(points, epsilon=0.1)

    @pytest.mark.parametrize("bad_value", [np.nan, np.inf])
    def test_every_algorithm_rejects_non_finite(self, bad_value):
        from repro import ALGORITHMS, similarity_join

        points = np.random.default_rng(4).random((10, 3))
        points[3, 1] = bad_value
        for algorithm in ALGORITHMS:
            with pytest.raises(InvalidParameterError):
                similarity_join(points, epsilon=0.1, algorithm=algorithm)

    def test_external_join_rejects_non_finite(self):
        points = np.full((5, 2), np.nan)
        with pytest.raises(InvalidParameterError):
            external_self_join(points, JoinSpec(epsilon=0.1), 100)

    @pytest.mark.parametrize("bad_value", [np.nan, np.inf, -np.inf])
    def test_grid_fit_rejects_non_finite_bounds(self, bad_value):
        points = np.random.default_rng(4).random((10, 3))
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        hi[1] = bad_value
        with pytest.raises(InvalidParameterError):
            Grid.fit(points, eps=0.1, lo=lo, hi=hi)

    def test_stripe_planner_rejects_non_finite_values(self):
        values = np.random.default_rng(4).random(50)
        values[17] = np.nan
        with pytest.raises(InvalidParameterError):
            plan_parallel_stripes(values, JoinSpec(epsilon=0.1), n_workers=2)


# ----------------------------------------------------------------------
# injected faults: recovery must be exact, counted, and leak-free
# ----------------------------------------------------------------------
def _points(n=900, d=5, seed=11):
    return np.random.default_rng(seed).random((n, d))


def _executor(spec, fault_plan=None, **kwargs):
    kwargs.setdefault("use_processes", False)
    kwargs.setdefault("serial_threshold", 0)
    kwargs.setdefault("retry_backoff", 0.0)
    return ParallelJoinExecutor(spec, fault_plan=fault_plan, **kwargs)


class TestFaultPlanDeterminism:
    def test_rate_decisions_replay_identically(self):
        first = FaultPlan(seed=42, crash_rate=0.5, io_failure_rate=0.3)
        second = FaultPlan(seed=42, crash_rate=0.5, io_failure_rate=0.3)
        crashes = [first.crash_fires(task, 0) for task in range(64)]
        assert crashes == [second.crash_fires(task, 0) for task in range(64)]
        assert any(crashes) and not all(crashes)
        io = [first.io_fault(o) for o in range(64)]
        assert io == [second.io_fault(o) for o in range(64)]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, crash_rate=0.5)
        b = FaultPlan(seed=2, crash_rate=0.5)
        assert [a.crash_fires(t, 0) for t in range(64)] != [
            b.crash_fires(t, 0) for t in range(64)
        ]

    def test_rate_faults_are_transient(self):
        # Rate-drawn faults fire on attempt 0 only: retry always recovers.
        plan = FaultPlan(seed=0, crash_rate=1.0, delay_rate=1.0)
        assert plan.crash_fires(3, 0) and not plan.crash_fires(3, 1)
        assert plan.delay_for(3, 0) > 0.0 and plan.delay_for(3, 1) == 0.0

    def test_explicit_fault_attempt_budgets(self):
        plan = FaultPlan().crash_task(2, attempts=2).crash_task(5, attempts=None)
        assert plan.crash_fires(2, 0) and plan.crash_fires(2, 1)
        assert not plan.crash_fires(2, 2)
        assert all(plan.crash_fires(5, attempt) for attempt in range(10))

    def test_plan_is_picklable(self):
        plan = (
            FaultPlan(seed=3, crash_rate=0.25)
            .crash_task(1)
            .delay_task(2, 0.1)
            .fail_page_read(7)
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert [clone.crash_fires(t, 0) for t in range(16)] == [
            plan.crash_fires(t, 0) for t in range(16)
        ]

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(io_failure_rate=-0.1)


class TestStripeTaskRecovery:
    """In-process executor: same retry logic as the pool, run cheaply."""

    def _oracle_and_tasks(self, spec, points):
        oracle = epsilon_kdb_self_join(points, spec)
        clean = _executor(spec).self_join(points)
        assert clean.pairs.tobytes() == oracle.pairs.tobytes()
        return oracle, len(clean.stats.worker_seconds)

    @pytest.mark.parametrize("which", ["first", "middle", "last"])
    def test_crash_any_stripe_is_recovered_exactly(self, which):
        points = _points()
        spec = JoinSpec(epsilon=0.3, n_workers=3)
        oracle, n_tasks = self._oracle_and_tasks(spec, points)
        assert n_tasks >= 2
        task = {"first": 0, "middle": n_tasks // 2, "last": n_tasks - 1}[which]
        plan = FaultPlan().crash_task(task)
        result = _executor(spec, plan).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.tasks_retried == 1
        assert result.stats.faults_injected == 1
        assert not result.stats.degraded_to_serial

    def test_timeout_then_retry_is_exact_and_counted(self):
        points = _points()
        spec = JoinSpec(epsilon=0.3, n_workers=3)
        oracle, _ = self._oracle_and_tasks(spec, points)
        plan = FaultPlan().delay_task(0, 0.2)
        result = _executor(spec, plan, task_timeout=0.05).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.tasks_timed_out == 1
        assert result.stats.tasks_retried == 1

    def test_exhausted_retries_surface_worker_crash_error(self):
        points = _points()
        spec = JoinSpec(epsilon=0.3, n_workers=3)
        plan = FaultPlan().crash_task(0, attempts=None)  # poisoned
        with pytest.raises(WorkerCrashError):
            _executor(spec, plan, max_task_retries=1).self_join(points)

    def test_transient_crash_on_every_pool_attempt_still_succeeds(self):
        # Crashes on attempts 0..max_task_retries; the final in-parent
        # attempt (which a real pool would run) must still complete.
        points = _points()
        spec = JoinSpec(epsilon=0.3, n_workers=3)
        oracle, _ = self._oracle_and_tasks(spec, points)
        plan = FaultPlan().crash_task(0, attempts=3)
        result = _executor(spec, plan, max_task_retries=2).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.tasks_retried == 3

    def test_pool_creation_failure_degrades_to_serial(self):
        points = _points()
        spec = JoinSpec(epsilon=0.3, n_workers=2)
        oracle = epsilon_kdb_self_join(points, spec)
        plan = FaultPlan().fail_pool_creation()
        result = _executor(spec, plan, use_processes=True).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.degraded_to_serial
        assert result.stats.faults_injected == 1

    def test_hard_crash_in_process_degrades_to_serial(self):
        points = _points()
        spec = JoinSpec(epsilon=0.3, n_workers=2)
        oracle = epsilon_kdb_self_join(points, spec)
        plan = FaultPlan().hard_crash_task(0)
        result = _executor(spec, plan).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.degraded_to_serial

    def test_two_set_join_crash_recovery(self):
        rng = np.random.default_rng(8)
        r, s = rng.random((700, 4)), rng.random((600, 4))
        spec = JoinSpec(epsilon=0.25, n_workers=3)
        oracle = epsilon_kdb_join(r, s, spec)
        plan = FaultPlan().crash_task(1)
        result = _executor(spec, plan).join(r, s)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.tasks_retried == 1

    def test_crash_rate_sweep_always_exact(self):
        points = _points(n=700)
        spec = JoinSpec(epsilon=0.3, n_workers=3)
        oracle = epsilon_kdb_self_join(points, spec)
        for seed in range(4):
            plan = FaultPlan(seed=seed, crash_rate=0.6)
            result = _executor(spec, plan).self_join(points)
            assert result.pairs.tobytes() == oracle.pairs.tobytes()
            assert result.stats.tasks_retried == result.stats.faults_injected


class TestPoolRecovery:
    """Real process pools: crash retry, broken-pool degradation, cleanup."""

    def test_pool_crash_is_retried_exactly(self, shm_guard):
        points = _points(n=1100)
        spec = JoinSpec(epsilon=0.3, n_workers=2)
        oracle = epsilon_kdb_self_join(points, spec)
        plan = FaultPlan().crash_task(0)
        result = _executor(spec, plan, use_processes=True).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.tasks_retried == 1
        assert not result.stats.degraded_to_serial

    def test_worker_death_breaks_pool_and_degrades(self, shm_guard):
        points = _points(n=1100)
        spec = JoinSpec(epsilon=0.3, n_workers=2)
        oracle = epsilon_kdb_self_join(points, spec)
        plan = FaultPlan().hard_crash_task(0)
        result = _executor(spec, plan, use_processes=True).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.degraded_to_serial

    def test_pool_timeout_is_retried_exactly(self, shm_guard):
        points = _points(n=1100)
        spec = JoinSpec(epsilon=0.3, n_workers=2)
        oracle = epsilon_kdb_self_join(points, spec)
        plan = FaultPlan().delay_task(0, 1.0)
        result = _executor(
            spec, plan, use_processes=True, task_timeout=0.25
        ).self_join(points)
        assert result.pairs.tobytes() == oracle.pairs.tobytes()
        assert result.stats.tasks_timed_out >= 1
        assert result.stats.tasks_retried >= 1

    def test_partial_export_failure_releases_earlier_segments(
        self, shm_guard, monkeypatch
    ):
        from repro.core import parallel as parallel_module

        real_export = parallel_module._export_shared
        calls = {"n": 0}

        def failing_export(array):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise MemoryError("injected export failure")
            return real_export(array)

        monkeypatch.setattr(parallel_module, "_export_shared", failing_export)
        rng = np.random.default_rng(9)
        r, s = rng.random((1400, 4)), rng.random((1300, 4))
        spec = JoinSpec(epsilon=0.25, n_workers=2)
        executor = ParallelJoinExecutor(spec, serial_threshold=0)
        with pytest.raises(MemoryError):
            executor.join(r, s)
        assert calls["n"] == 2  # shm_guard asserts the first was released


class TestStorageFaultRecovery:
    def test_transient_read_faults_are_retried_exactly(self):
        points = _points(n=600, d=3)
        spec = JoinSpec(epsilon=0.2)
        clean = external_self_join(
            points, spec, memory_points=300, store=PageStore(page_rows=64)
        )
        plan = FaultPlan().fail_page_read(1, 8, 15)
        store = PageStore(page_rows=64, fault_plan=plan)
        faulty = external_self_join(
            points, spec, memory_points=300, store=store
        )
        assert faulty.pairs.tobytes() == clean.pairs.tobytes()
        assert faulty.stats.storage_retries == 3
        assert faulty.stats.faults_injected == 3
        # Each retry is one extra physical read.
        assert faulty.stats.pages_read == clean.stats.pages_read + 3

    def test_io_failure_rate_sweep_always_exact(self):
        points = _points(n=500, d=3)
        spec = JoinSpec(epsilon=0.2)
        clean = external_self_join(points, spec, memory_points=250)
        for seed in range(3):
            plan = FaultPlan(seed=seed, io_failure_rate=0.2)
            store = PageStore(page_rows=64, fault_plan=plan)
            faulty = external_self_join(
                points, spec, memory_points=250, store=store
            )
            assert faulty.pairs.tobytes() == clean.pairs.tobytes()
            assert faulty.stats.storage_retries == faulty.stats.faults_injected

    def test_two_set_join_retries_transient_faults(self):
        rng = np.random.default_rng(10)
        r, s = rng.random((400, 3)), rng.random((350, 3))
        spec = JoinSpec(epsilon=0.2)
        clean = external_join(r, s, spec, memory_points=300)
        plan = FaultPlan().fail_page_read(2, 11)
        store = PageStore(page_rows=64, fault_plan=plan)
        faulty = external_join(r, s, spec, memory_points=300, store=store)
        assert faulty.pairs.tobytes() == clean.pairs.tobytes()
        assert faulty.stats.storage_retries == 2

    def test_exhausted_io_retries_propagate(self):
        points = _points(n=400, d=3)
        spec = JoinSpec(epsilon=0.2)
        # Persistent fault: every read fails, so no retry budget suffices.
        plan = FaultPlan(io_failure_rate=1.0)
        store = PageStore(page_rows=64, fault_plan=plan)
        with pytest.raises(TransientIoError):
            external_self_join(points, spec, memory_points=200, store=store)

    def test_zero_retry_budget_fails_on_first_fault(self):
        points = _points(n=400, d=3)
        spec = JoinSpec(epsilon=0.2)
        store = PageStore(page_rows=64, fault_plan=FaultPlan().fail_page_read(0))
        with pytest.raises(TransientIoError):
            external_self_join(
                points, spec, memory_points=200, store=store, io_retries=0
            )

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(InvalidParameterError):
            external_self_join(
                _points(n=10, d=2), JoinSpec(epsilon=0.2), 100, io_retries=-1
            )
