"""Reference oracles and comparison helpers shared across the test suite.

Kept in a plain module (rather than ``conftest.py``) so test files can
import them regardless of how pytest resolves its rootdir: ``conftest``
is importable only when pytest itself inserted the tests directory on
``sys.path``, while ``_oracles`` is a normal sibling module.
"""

from __future__ import annotations

import numpy as np

from repro import JoinSpec
from repro.baselines import brute_force_join, brute_force_self_join


def oracle_self_pairs(points: np.ndarray, spec: JoinSpec) -> np.ndarray:
    """Canonical self-join answer via the blocked nested loop."""
    return brute_force_self_join(points, spec).pairs


def oracle_two_set_pairs(
    points_r: np.ndarray, points_s: np.ndarray, spec: JoinSpec
) -> np.ndarray:
    """Canonical two-set join answer via the blocked nested loop."""
    return brute_force_join(points_r, points_s, spec).pairs


def assert_same_pairs(actual: np.ndarray, expected: np.ndarray, label: str = ""):
    """Assert two canonical (sorted) pair arrays are identical."""
    assert actual.shape == expected.shape, (
        f"{label}: expected {len(expected)} pairs, got {len(actual)}"
    )
    if len(expected):
        assert (actual == expected).all(), f"{label}: pair sets differ"
