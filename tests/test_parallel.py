"""Tests for the stripe-parallel epsilon-kdB executor.

Covers the exactness contract (parallel output is byte-identical to the
serial traversal), the graceful degradation rules (``n_workers=1`` and
tiny inputs run the serial path), worker-count invariance, determinism
across runs, and the observability counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import (
    JoinSpec,
    PairCounter,
    epsilon_kdb_join,
    epsilon_kdb_self_join,
    parallel_join,
    parallel_self_join,
    similarity_join,
)
from repro.core.parallel import ParallelJoinExecutor
from repro.errors import InvalidParameterError


def make_points(n=1200, d=6, seed=7):
    return np.random.default_rng(seed).random((n, d))


SPEC = dict(epsilon=0.3)


# ----------------------------------------------------------------------
# exactness against the serial engine and the brute-force oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
def test_pooled_self_join_byte_identical_to_serial(metric):
    points = make_points()
    spec = JoinSpec(epsilon=0.3, metric=metric)
    serial = epsilon_kdb_self_join(points, spec)
    executor = ParallelJoinExecutor(spec, n_workers=3, serial_threshold=64)
    result = executor.self_join(points)
    assert result.pairs.tobytes() == serial.pairs.tobytes()
    assert result.stats.stripes > 1
    assert result.stats.workers_used >= 2
    assert_same_pairs(result.pairs, oracle_self_pairs(points, spec), "pooled")


def test_pooled_two_set_join_byte_identical_to_serial():
    rng = np.random.default_rng(13)
    r = rng.random((900, 5))
    s = rng.random((800, 5))
    spec = JoinSpec(epsilon=0.35, metric="l1")
    serial = epsilon_kdb_join(r, s, spec)
    executor = ParallelJoinExecutor(spec, n_workers=3, serial_threshold=64)
    result = executor.join(r, s)
    assert result.pairs.tobytes() == serial.pairs.tobytes()
    assert_same_pairs(result.pairs, oracle_two_set_pairs(r, s, spec), "pooled")


@pytest.mark.parametrize("n_workers", [1, 2, 3, 7])
def test_self_join_invariant_to_worker_count(n_workers):
    points = make_points(n=800)
    spec = JoinSpec(**SPEC)
    expected = epsilon_kdb_self_join(points, spec).pairs
    executor = ParallelJoinExecutor(
        spec, n_workers=n_workers, serial_threshold=64, use_processes=False
    )
    assert executor.self_join(points).pairs.tobytes() == expected.tobytes()


@pytest.mark.parametrize("n_workers", [1, 2, 3, 7])
def test_two_set_join_invariant_to_worker_count(n_workers):
    rng = np.random.default_rng(5)
    r = rng.random((700, 4))
    s = rng.random((600, 4))
    spec = JoinSpec(epsilon=0.2)
    expected = epsilon_kdb_join(r, s, spec).pairs
    executor = ParallelJoinExecutor(
        spec, n_workers=n_workers, serial_threshold=64, use_processes=False
    )
    assert executor.join(r, s).pairs.tobytes() == expected.tobytes()


def test_wider_overlap_changes_nothing():
    points = make_points(n=900)
    spec = JoinSpec(epsilon=0.3, stripe_overlap=0.55)
    expected = epsilon_kdb_self_join(points, spec).pairs
    executor = ParallelJoinExecutor(
        spec, n_workers=4, serial_threshold=64, use_processes=False
    )
    result = executor.self_join(points)
    assert result.pairs.tobytes() == expected.tobytes()


# ----------------------------------------------------------------------
# determinism: same spec + seed => byte-identical ordering across runs
# ----------------------------------------------------------------------
def test_serial_join_is_deterministic_across_runs():
    spec = JoinSpec(**SPEC)
    first = epsilon_kdb_self_join(make_points(), spec)
    second = epsilon_kdb_self_join(make_points(), spec)
    assert first.pairs.tobytes() == second.pairs.tobytes()


def test_parallel_join_is_deterministic_across_runs():
    spec = JoinSpec(**SPEC)
    runs = []
    for _ in range(2):
        executor = ParallelJoinExecutor(spec, n_workers=3, serial_threshold=64)
        runs.append(executor.self_join(make_points()))
    assert runs[0].pairs.tobytes() == runs[1].pairs.tobytes()
    assert runs[0].stats.stripes == runs[1].stats.stripes
    assert (
        runs[0].stats.duplicate_pairs_merged
        == runs[1].stats.duplicate_pairs_merged
    )


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
def test_one_worker_runs_serial_path():
    points = make_points(n=600)
    spec = JoinSpec(**SPEC)
    result = ParallelJoinExecutor(spec, n_workers=1).self_join(points)
    assert result.stats.workers_used == 0
    assert result.stats.stripes == 1
    assert result.pairs.tobytes() == epsilon_kdb_self_join(points, spec).pairs.tobytes()


def test_tiny_input_runs_serial_path():
    points = make_points(n=200)
    spec = JoinSpec(**SPEC)
    result = ParallelJoinExecutor(spec, n_workers=4).self_join(points)
    assert result.stats.workers_used == 0


def test_single_stripe_domain_runs_serial_path():
    # All mass in one dimension-0 cell: nothing to partition.
    points = make_points(n=600)
    points[:, 0] *= 0.01
    spec = JoinSpec(epsilon=0.3)
    result = ParallelJoinExecutor(
        spec, n_workers=4, serial_threshold=64
    ).self_join(points)
    assert result.stats.workers_used == 0
    assert_same_pairs(result.pairs, oracle_self_pairs(points, spec), "1-stripe")


def test_degenerate_inputs():
    spec = JoinSpec(**SPEC)
    executor = ParallelJoinExecutor(spec, n_workers=4, serial_threshold=0)
    assert len(executor.self_join(np.empty((0, 3))).pairs) == 0
    assert len(executor.self_join(np.zeros((1, 3))).pairs) == 0
    assert len(executor.join(np.empty((0, 3)), np.zeros((4, 3))).pairs) == 0


# ----------------------------------------------------------------------
# knobs, sinks, stats
# ----------------------------------------------------------------------
def test_counting_sink_matches_collected_pairs():
    points = make_points(n=900)
    spec = JoinSpec(**SPEC)
    executor = ParallelJoinExecutor(
        spec, n_workers=3, serial_threshold=64, use_processes=False
    )
    collected = executor.self_join(points)
    sink = PairCounter()
    counted = executor.self_join(points, sink=sink)
    assert sink.count == len(collected.pairs)
    assert counted.stats.pairs_emitted == sink.count
    assert len(counted.pairs) == 0


def test_observability_counters():
    points = make_points(n=1500)
    spec = JoinSpec(**SPEC)
    executor = ParallelJoinExecutor(
        spec, n_workers=4, serial_threshold=64, use_processes=False
    )
    result = executor.self_join(points)
    stats = result.stats
    assert stats.stripes >= 2
    assert len(stats.worker_seconds) >= 1
    assert all(t >= 0 for t in stats.worker_seconds)
    assert stats.duplicate_pairs_merged >= 0
    assert stats.pairs_emitted == len(result.pairs)


def test_spec_knob_validation():
    with pytest.raises(InvalidParameterError):
        JoinSpec(epsilon=0.3, n_workers=0)
    with pytest.raises(InvalidParameterError):
        JoinSpec(epsilon=0.3, stripe_overlap=-1.0)
    # An overlap narrower than the per-coordinate bound is rejected at
    # plan time, not construction time (the bound depends on the metric).
    spec = JoinSpec(epsilon=0.3, stripe_overlap=0.1)
    with pytest.raises(InvalidParameterError):
        spec.resolved_stripe_overlap()


def test_spec_resilience_knob_validation():
    with pytest.raises(InvalidParameterError):
        JoinSpec(epsilon=0.3, task_timeout=0.0)
    with pytest.raises(InvalidParameterError):
        JoinSpec(epsilon=0.3, task_timeout=float("inf"))
    with pytest.raises(InvalidParameterError):
        JoinSpec(epsilon=0.3, max_task_retries=-1)
    spec = JoinSpec(epsilon=0.3, task_timeout=2.5, max_task_retries=0)
    assert spec.task_timeout == 2.5
    assert spec.max_task_retries == 0


def test_executor_inherits_resilience_knobs_from_spec():
    spec = JoinSpec(epsilon=0.3, task_timeout=1.5, max_task_retries=4)
    executor = ParallelJoinExecutor(spec, n_workers=2)
    assert executor.task_timeout == 1.5
    assert executor.max_task_retries == 4
    override = ParallelJoinExecutor(
        spec, n_workers=2, task_timeout=0.5, max_task_retries=1
    )
    assert override.task_timeout == 0.5
    assert override.max_task_retries == 1
    with pytest.raises(InvalidParameterError):
        ParallelJoinExecutor(spec, n_workers=2, max_task_retries=-1)


def test_clean_run_reports_zero_resilience_counters():
    points = make_points(n=900)
    spec = JoinSpec(**SPEC)
    executor = ParallelJoinExecutor(
        spec, n_workers=3, serial_threshold=64, use_processes=False
    )
    stats = executor.self_join(points).stats
    assert stats.tasks_retried == 0
    assert stats.tasks_timed_out == 0
    assert not stats.degraded_to_serial
    assert stats.faults_injected == 0
    assert stats.storage_retries == 0


def test_fault_plan_kwarg_flows_through_entry_point():
    from repro import FaultPlan

    points = make_points(n=800)
    spec = JoinSpec(**SPEC)
    expected = epsilon_kdb_self_join(points, spec).pairs
    result = parallel_self_join(
        points,
        spec,
        n_workers=3,
        serial_threshold=64,
        use_processes=False,
        retry_backoff=0.0,
        fault_plan=FaultPlan().crash_task(0),
    )
    assert result.pairs.tobytes() == expected.tobytes()
    assert result.stats.tasks_retried == 1
    assert result.stats.faults_injected == 1


def test_spec_n_workers_flows_through():
    spec = JoinSpec(epsilon=0.3, n_workers=1)
    result = ParallelJoinExecutor(spec).self_join(make_points(n=600))
    assert result.stats.workers_used == 0


# ----------------------------------------------------------------------
# public API wiring
# ----------------------------------------------------------------------
def test_similarity_join_parallel_flag():
    points = make_points(n=500)
    expected = similarity_join(points, epsilon=0.3)
    pairs = similarity_join(points, epsilon=0.3, parallel=True, n_workers=2)
    assert pairs.tobytes() == expected.tobytes()


def test_similarity_join_parallel_algorithm_name():
    points = make_points(n=500)
    expected = similarity_join(points, epsilon=0.3)
    pairs = similarity_join(points, epsilon=0.3, algorithm="epsilon-kdb-parallel")
    assert pairs.tobytes() == expected.tobytes()


def test_similarity_join_parallel_rejects_other_algorithms():
    with pytest.raises(InvalidParameterError):
        similarity_join(
            make_points(n=50), epsilon=0.3, algorithm="grid", parallel=True
        )


def test_similarity_join_accepts_resilience_kwargs():
    points = make_points(n=500)
    expected = similarity_join(points, epsilon=0.3)
    pairs = similarity_join(
        points,
        epsilon=0.3,
        parallel=True,
        n_workers=2,
        task_timeout=30.0,
        max_task_retries=1,
    )
    assert pairs.tobytes() == expected.tobytes()
    with pytest.raises(InvalidParameterError):
        similarity_join(points, epsilon=0.3, task_timeout=-1.0)


def test_function_entry_points():
    points = make_points(n=700)
    spec = JoinSpec(**SPEC)
    expected = epsilon_kdb_self_join(points, spec).pairs
    result = parallel_self_join(
        points, spec, n_workers=2, serial_threshold=64, use_processes=False
    )
    assert result.pairs.tobytes() == expected.tobytes()
    rng = np.random.default_rng(3)
    r, s = rng.random((500, 4)), rng.random((400, 4))
    expected_rs = epsilon_kdb_join(r, s, spec).pairs
    result_rs = parallel_join(
        r, s, spec, n_workers=2, serial_threshold=64, use_processes=False
    )
    assert result_rs.pairs.tobytes() == expected_rs.tobytes()
