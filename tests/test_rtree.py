"""Structural and query tests for the R-tree."""

import numpy as np
import pytest

from repro.baselines.rtree import RTree, _str_tile
from repro.errors import InvalidParameterError
from repro.metrics import L2, LINF


def check_mbr_invariants(tree):
    """Every node's MBR tightly contains everything beneath it."""

    def visit(node):
        if node.is_leaf:
            if not node.entries:
                return None
            block = tree.points[np.asarray(node.entries)]
            lo, hi = block.min(axis=0), block.max(axis=0)
        else:
            bounds = [visit(child) for child in node.entries]
            lo = np.min([b[0] for b in bounds], axis=0)
            hi = np.max([b[1] for b in bounds], axis=0)
        assert np.allclose(node.lo, lo), "loose or wrong lower bound"
        assert np.allclose(node.hi, hi), "loose or wrong upper bound"
        return node.lo, node.hi

    visit(tree.root)


def collect_point_entries(tree):
    out = []
    for leaf in tree.iter_leaves():
        out.extend(leaf.entries)
    return sorted(out)


class TestBulkLoad:
    def test_contains_every_point_once(self, small_uniform):
        tree = RTree.bulk_load(small_uniform, max_entries=16)
        assert collect_point_entries(tree) == list(range(len(small_uniform)))

    def test_mbr_invariants(self, small_uniform):
        tree = RTree.bulk_load(small_uniform, max_entries=16)
        check_mbr_invariants(tree)

    def test_fanout_respected(self, small_uniform):
        tree = RTree.bulk_load(small_uniform, max_entries=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.entries) <= 8
            if not node.is_leaf:
                stack.extend(node.entries)

    def test_leaves_at_uniform_depth(self, small_uniform):
        tree = RTree.bulk_load(small_uniform, max_entries=8)
        depths = set()

        def visit(node, depth):
            if node.is_leaf:
                depths.add(depth)
            else:
                for child in node.entries:
                    visit(child, depth + 1)

        visit(tree.root, 0)
        assert len(depths) == 1

    def test_empty_input(self):
        tree = RTree.bulk_load(np.empty((0, 3)))
        assert len(tree) == 0

    def test_single_point(self):
        tree = RTree.bulk_load(np.array([[0.1, 0.2]]))
        assert collect_point_entries(tree) == [0]
        assert tree.height() == 1


class TestStrTiling:
    def test_groups_cover_input(self):
        rng = np.random.default_rng(0)
        coords = rng.random((137, 4))
        groups = _str_tile(coords, np.arange(137), dim=0, capacity=10)
        flat = sorted(int(i) for g in groups for i in g)
        assert flat == list(range(137))

    def test_group_sizes_bounded(self):
        rng = np.random.default_rng(1)
        coords = rng.random((200, 3))
        groups = _str_tile(coords, np.arange(200), dim=0, capacity=16)
        assert all(1 <= len(g) <= 16 for g in groups)

    def test_small_input_single_group(self):
        coords = np.random.default_rng(2).random((5, 2))
        groups = _str_tile(coords, np.arange(5), dim=0, capacity=16)
        assert len(groups) == 1


class TestInsert:
    def test_incremental_contains_every_point(self):
        rng = np.random.default_rng(3)
        points = rng.random((300, 5))
        tree = RTree(points, max_entries=8)
        for index in range(len(points)):
            tree.insert(index)
        assert collect_point_entries(tree) == list(range(300))
        assert len(tree) == 300

    def test_incremental_mbr_invariants(self):
        rng = np.random.default_rng(4)
        points = rng.random((300, 4))
        tree = RTree(points, max_entries=8)
        for index in range(len(points)):
            tree.insert(index)
        check_mbr_invariants(tree)

    def test_incremental_fanout_respected(self):
        rng = np.random.default_rng(5)
        points = rng.random((400, 3))
        tree = RTree(points, max_entries=6)
        for index in range(len(points)):
            tree.insert(index)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.entries) <= 6
            if not node.is_leaf:
                stack.extend(node.entries)

    def test_split_respects_minimum_fill(self):
        rng = np.random.default_rng(6)
        points = rng.random((500, 2))
        tree = RTree(points, max_entries=9)
        for index in range(len(points)):
            tree.insert(index)
        stack = [(tree.root, True)]
        while stack:
            node, is_root = stack.pop()
            if not is_root:
                assert len(node.entries) >= tree.min_entries
            if not node.is_leaf:
                stack.extend((child, False) for child in node.entries)

    def test_rejects_small_fanout(self):
        with pytest.raises(InvalidParameterError):
            RTree(np.zeros((1, 2)), max_entries=3)


class TestRangeQuery:
    @pytest.mark.parametrize("metric", [L2, LINF])
    def test_matches_linear_scan(self, metric, small_clusters):
        tree = RTree.bulk_load(small_clusters, max_entries=16)
        rng = np.random.default_rng(7)
        for _ in range(20):
            query = rng.random(small_clusters.shape[1])
            eps = float(rng.uniform(0.05, 0.3))
            hits = tree.range_query(query, eps, metric)
            diffs = np.abs(small_clusters - query)
            expected = np.flatnonzero(metric.within_gap(diffs, eps))
            assert hits.tolist() == expected.tolist()

    def test_query_on_incrementally_built_tree(self):
        rng = np.random.default_rng(8)
        points = rng.random((200, 3))
        tree = RTree(points, max_entries=8)
        for index in range(len(points)):
            tree.insert(index)
        query = np.array([0.5, 0.5, 0.5])
        hits = tree.range_query(query, 0.2, L2)
        diffs = np.linalg.norm(points - query, axis=1)
        assert hits.tolist() == np.flatnonzero(diffs <= 0.2).tolist()

    def test_height_grows_with_size(self):
        rng = np.random.default_rng(9)
        small = RTree.bulk_load(rng.random((10, 2)), max_entries=4)
        large = RTree.bulk_load(rng.random((1000, 2)), max_entries=4)
        assert large.height() > small.height()
