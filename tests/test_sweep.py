"""Unit tests for the band-sweep pair generators."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sweep import (
    band_pairs_cross,
    band_pairs_self,
    iter_band_pairs_cross,
    iter_band_pairs_self,
)


def naive_self(values, eps):
    pairs = set()
    for a in range(len(values)):
        for b in range(a + 1, len(values)):
            if abs(values[b] - values[a]) <= eps:
                pairs.add((a, b))
    return pairs


def naive_cross(values_a, values_b, eps):
    pairs = set()
    for a in range(len(values_a)):
        for b in range(len(values_b)):
            if abs(values_a[a] - values_b[b]) <= eps:
                pairs.add((a, b))
    return pairs


def as_set(pos_a, pos_b):
    return set(zip(pos_a.tolist(), pos_b.tolist()))


class TestBandPairsSelf:
    def test_matches_naive_on_random_input(self):
        rng = np.random.default_rng(0)
        for trial in range(10):
            values = np.sort(rng.random(rng.integers(0, 40)))
            eps = float(rng.uniform(0.01, 0.5))
            pos_a, pos_b = band_pairs_self(values, eps)
            assert as_set(pos_a, pos_b) == naive_self(values, eps)

    def test_empty_and_singleton(self):
        for values in (np.array([]), np.array([0.5])):
            pos_a, pos_b = band_pairs_self(values, 0.3)
            assert len(pos_a) == 0 and len(pos_b) == 0

    def test_all_within_band(self):
        values = np.array([0.1, 0.1, 0.1, 0.1])
        pos_a, pos_b = band_pairs_self(values, 0.0)
        assert len(pos_a) == 6  # all C(4,2) pairs of equal values

    def test_no_pair_with_itself(self):
        values = np.linspace(0, 1, 20)
        pos_a, pos_b = band_pairs_self(values, 0.5)
        assert (pos_a < pos_b).all()

    def test_band_boundary_inclusive(self):
        values = np.array([0.0, 1.0])
        pos_a, _ = band_pairs_self(values, 1.0)
        assert len(pos_a) == 1
        pos_a, _ = band_pairs_self(values, 0.999999)
        assert len(pos_a) == 0


class TestBandPairsCross:
    def test_matches_naive_on_random_input(self):
        rng = np.random.default_rng(1)
        for trial in range(10):
            values_a = np.sort(rng.random(rng.integers(0, 30)))
            values_b = np.sort(rng.random(rng.integers(0, 30)))
            eps = float(rng.uniform(0.01, 0.5))
            pos_a, pos_b = band_pairs_cross(values_a, values_b, eps)
            assert as_set(pos_a, pos_b) == naive_cross(values_a, values_b, eps)

    def test_empty_sides(self):
        values = np.array([0.1, 0.2])
        for a, b in ((np.array([]), values), (values, np.array([]))):
            pos_a, pos_b = band_pairs_cross(a, b, 0.5)
            assert len(pos_a) == 0 and len(pos_b) == 0


class TestChunkedIterators:
    def test_self_iterator_equals_oneshot(self):
        rng = np.random.default_rng(2)
        values = np.sort(rng.random(200))
        eps = 0.15
        expected = as_set(*band_pairs_self(values, eps))
        for budget in (1, 7, 50, 10_000):
            collected = set()
            for pos_a, pos_b in iter_band_pairs_self(values, eps, budget=budget):
                collected |= as_set(pos_a, pos_b)
            assert collected == expected, f"budget={budget}"

    def test_cross_iterator_equals_oneshot(self):
        rng = np.random.default_rng(3)
        values_a = np.sort(rng.random(120))
        values_b = np.sort(rng.random(90))
        eps = 0.2
        expected = as_set(*band_pairs_cross(values_a, values_b, eps))
        for budget in (1, 13, 999):
            collected = set()
            chunks = 0
            for pos_a, pos_b in iter_band_pairs_cross(
                values_a, values_b, eps, budget=budget
            ):
                collected |= as_set(pos_a, pos_b)
                chunks += 1
            assert collected == expected, f"budget={budget}"
            if budget == 13:
                assert chunks > 1  # the budget actually forced chunking

    def test_iterator_respects_budget_roughly(self):
        values = np.sort(np.random.default_rng(4).random(300))
        max_chunk = 0
        for pos_a, _ in iter_band_pairs_self(values, 0.5, budget=100):
            max_chunk = max(max_chunk, len(pos_a))
        # One row's window may exceed the budget, but never by more than
        # a single row's worth of candidates (here < n).
        assert max_chunk <= 100 + 300

    def test_empty_input_yields_nothing(self):
        assert list(iter_band_pairs_self(np.array([]), 0.1)) == []
        assert list(iter_band_pairs_cross(np.array([]), np.array([1.0]), 0.1)) == []


_sorted_values = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=0,
    max_size=50,
).map(lambda xs: np.sort(np.asarray(xs, dtype=np.float64)))


class TestChunkedIteratorProperties:
    """A budget of 1 forces one chunk per non-empty window — the most
    adversarial chunking — yet the union of chunks must still be exactly
    the unchunked pair set."""

    @settings(max_examples=60, deadline=None)
    @given(values=_sorted_values, eps=st.floats(min_value=0.0, max_value=1.5))
    def test_self_budget_one_reproduces_oneshot(self, values, eps):
        expected = as_set(*band_pairs_self(values, eps))
        collected = []
        for pos_a, pos_b in iter_band_pairs_self(values, eps, budget=1):
            assert len(pos_a) == len(pos_b)
            collected.extend(zip(pos_a.tolist(), pos_b.tolist()))
        assert len(collected) == len(set(collected))  # no pair twice
        assert set(collected) == expected

    @settings(max_examples=60, deadline=None)
    @given(
        values_a=_sorted_values,
        values_b=_sorted_values,
        eps=st.floats(min_value=0.0, max_value=1.5),
    )
    def test_cross_budget_one_reproduces_oneshot(self, values_a, values_b, eps):
        expected = as_set(*band_pairs_cross(values_a, values_b, eps))
        collected = []
        for pos_a, pos_b in iter_band_pairs_cross(
            values_a, values_b, eps, budget=1
        ):
            assert len(pos_a) == len(pos_b)
            collected.extend(zip(pos_a.tolist(), pos_b.tolist()))
        assert len(collected) == len(set(collected))
        assert set(collected) == expected


class TestEpsilonSweepStats:
    """Regression: per-epsilon ``structure_cache_hits`` must attribute
    reuse to the joins that hit the cache (0 or 1 each) and sum exactly
    to the sweep aggregate and to the cache's own hit counter."""

    def test_per_epsilon_hits_sum_to_aggregate(self):
        from repro import JoinSpec
        from repro.core.flat_build import TreeCache
        from repro.core.sweep import epsilon_sweep

        points = np.random.default_rng(3).random((400, 5))
        cache = TreeCache()
        epsilons = [0.15, 0.35, 0.25, 0.2]
        results, aggregate = epsilon_sweep(
            points, epsilons, cache=cache, return_stats=True
        )
        per_eps = [r.stats.structure_cache_hits for r in results]
        assert all(hit in (0, 1) for hit in per_eps)
        # The coarsest epsilon pays the build; every other join reuses it.
        assert per_eps[epsilons.index(max(epsilons))] == 0
        assert sum(per_eps) == len(epsilons) - 1
        assert aggregate.structure_cache_hits == sum(per_eps)
        assert cache.hits == sum(per_eps)
        assert cache.misses == 1
        # The aggregate's additive counters accumulate across the sweep.
        assert aggregate.pairs_emitted == sum(
            r.stats.pairs_emitted for r in results
        )

    def test_second_sweep_attributes_hits_to_every_epsilon(self):
        from repro.core.flat_build import TreeCache
        from repro.core.sweep import epsilon_sweep

        points = np.random.default_rng(4).random((300, 4))
        cache = TreeCache()
        epsilons = [0.3, 0.2]
        epsilon_sweep(points, epsilons, cache=cache)
        before = cache.hits
        results, aggregate = epsilon_sweep(
            points, epsilons, cache=cache, return_stats=True
        )
        per_eps = [r.stats.structure_cache_hits for r in results]
        assert per_eps == [1, 1]  # warm cache: even the coarsest hits
        assert aggregate.structure_cache_hits == cache.hits - before
