"""Structural tests for the epsilon-kdB tree and its grid."""

import numpy as np
import pytest

from repro.core.config import JoinSpec
from repro.core.epsilon_kdb import EpsilonKdbTree, Grid, InternalNode, LeafNode
from repro.errors import DomainError, InvalidParameterError


class TestGrid:
    def test_cell_count_floor_rule(self):
        grid = Grid.fit(np.array([[0.0], [1.0]]), eps=0.3)
        # span 1.0 / 0.3 -> 3 cells; the last one is wider.
        assert grid.n_cells.tolist() == [3]

    def test_single_cell_when_span_below_eps(self):
        grid = Grid.fit(np.array([[0.0], [0.05]]), eps=0.1)
        assert grid.n_cells.tolist() == [1]

    def test_every_point_in_exactly_one_cell(self):
        rng = np.random.default_rng(0)
        points = rng.random((500, 3))
        grid = Grid.fit(points, eps=0.07)
        for dim in range(3):
            cells = grid.cell_of(points[:, dim], dim)
            assert (cells >= 0).all()
            assert (cells < grid.n_cells[dim]).all()

    def test_cell_width_at_least_eps(self):
        """The clipped final cell is wider than eps, never narrower."""
        grid = Grid.fit(np.array([[0.0], [1.0]]), eps=0.3)
        # points in [0.9, 1.0] land in cell 2, whose span [0.6, 1.0]
        # includes the remainder.
        assert grid.cell_of(np.array([0.95]), 0)[0] == 2
        assert grid.cell_of(np.array([0.61]), 0)[0] == 2

    def test_scalar_and_vector_cells_agree(self):
        rng = np.random.default_rng(1)
        points = rng.random((200, 2))
        grid = Grid.fit(points, eps=0.13)
        vector = grid.cell_of(points[:, 1], 1)
        for value, expected in zip(points[:, 1], vector):
            assert grid.cell_of_scalar(value, 1) == expected

    def test_adjacent_cell_rule_holds(self):
        """Points within eps in a dimension differ by at most one cell."""
        rng = np.random.default_rng(2)
        values = rng.random(2000)
        eps = 0.06
        grid = Grid.fit(values.reshape(-1, 1), eps=eps)
        cells = grid.cell_of(values, 0)
        order = np.argsort(values)
        sorted_values = values[order]
        sorted_cells = cells[order]
        for k in range(len(values) - 1):
            within = np.flatnonzero(
                sorted_values[k + 1 :] - sorted_values[k] <= eps
            )
            if len(within):
                neighbors = sorted_cells[k + 1 : k + 1 + len(within)]
                assert (np.abs(neighbors - sorted_cells[k]) <= 1).all()

    def test_union_covers_both_sets(self):
        a = np.array([[0.0, 0.5]])
        b = np.array([[2.0, -1.0]])
        grid = Grid.fit_union(a, b, eps=0.5)
        grid.validate(a)
        grid.validate(b)

    def test_validate_rejects_outside_points(self):
        grid = Grid.fit(np.array([[0.0], [1.0]]), eps=0.1)
        with pytest.raises(DomainError):
            grid.validate(np.array([[1.5]]))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidParameterError):
            Grid.fit(np.zeros((1, 1)), eps=0.1, lo=np.array([1.0]), hi=np.array([0.0]))

    def test_single_point_degenerates_to_one_cell(self):
        grid = Grid.fit(np.array([[0.3, -1.5, 7.0]]), eps=0.2)
        assert grid.n_cells.tolist() == [1, 1, 1]
        assert grid.cell_of(np.array([0.3]), 0)[0] == 0
        grid.validate(np.array([[0.3, -1.5, 7.0]]))

    def test_constant_dimension_gets_one_cell(self):
        rng = np.random.default_rng(7)
        points = rng.random((100, 3))
        points[:, 1] = 0.25  # zero span in dim 1
        grid = Grid.fit(points, eps=0.1)
        assert grid.n_cells[1] == 1
        assert grid.n_cells[0] > 1 and grid.n_cells[2] > 1
        assert (grid.cell_of(points[:, 1], 1) == 0).all()

    def test_mixed_dtype_bounds_coerced_to_float64(self):
        grid = Grid.fit(
            np.array([[0, 0], [5, 5]], dtype=np.int32),
            eps=0.5,
            lo=np.array([0, 0], dtype=np.int64),
            hi=np.array([5.0, 5.0], dtype=np.float32),
        )
        assert grid.lo.dtype == np.float64 and grid.hi.dtype == np.float64
        assert grid.n_cells.tolist() == [10, 10]

    def test_fit_union_mixed_dtypes(self):
        grid = Grid.fit_union(
            np.array([[0, 1]], dtype=np.int32),
            np.array([[2.5, -0.5]], dtype=np.float32),
            eps=0.5,
        )
        assert grid.lo.dtype == np.float64 and grid.hi.dtype == np.float64
        assert np.allclose(grid.lo, [0.0, -0.5])
        assert np.allclose(grid.hi, [2.5, 1.0])

    def test_fit_union_rejects_non_finite(self):
        with pytest.raises(InvalidParameterError):
            Grid.fit_union(
                np.array([[0.0, np.nan]]), np.array([[1.0, 1.0]]), eps=0.5
            )

    def test_fit_rejects_mismatched_bounds(self):
        with pytest.raises(InvalidParameterError):
            Grid.fit(
                np.zeros((2, 2)), eps=0.1, lo=np.zeros(2), hi=np.ones(3)
            )


def leaf_point_count(tree):
    return sum(leaf.size for leaf in tree.iter_leaves())


def check_cell_containment(tree):
    """Every point under a child keyed by cell c really lies in cell c."""

    def visit(node):
        if isinstance(node, LeafNode):
            return node.indices
        gathered = []
        for cell, child in node.children.items():
            below = visit(child)
            values = tree.points[below, node.split_dim]
            assert (tree.grid.cell_of(values, node.split_dim) == cell).all()
            gathered.append(below)
        return np.concatenate(gathered) if gathered else np.empty(0, dtype=np.int64)

    visit(tree.root)


class TestBulkBuild:
    def test_partitions_all_points(self, small_clusters):
        tree = EpsilonKdbTree.build(small_clusters, JoinSpec(epsilon=0.1))
        indices = np.sort(
            np.concatenate([leaf.indices for leaf in tree.iter_leaves()])
        )
        assert indices.tolist() == list(range(len(small_clusters)))

    def test_cell_containment_invariant(self, small_clusters):
        tree = EpsilonKdbTree.build(
            small_clusters, JoinSpec(epsilon=0.08, leaf_size=32)
        )
        check_cell_containment(tree)

    def test_leaf_size_respected_when_dims_remain(self, small_uniform):
        spec = JoinSpec(epsilon=0.2, leaf_size=16)
        tree = EpsilonKdbTree.build(small_uniform, spec)
        for leaf in tree.iter_leaves():
            if leaf.level < len(tree.split_order):
                assert leaf.size <= spec.leaf_size

    def test_small_input_stays_single_leaf(self):
        points = np.random.default_rng(0).random((10, 4))
        tree = EpsilonKdbTree.build(points, JoinSpec(epsilon=0.1, leaf_size=64))
        assert isinstance(tree.root, LeafNode)

    def test_leaves_sorted_by_sort_dim(self, small_uniform):
        tree = EpsilonKdbTree.build(
            small_uniform, JoinSpec(epsilon=0.15, leaf_size=32)
        )
        for leaf in tree.iter_leaves():
            values = tree.points[leaf.indices, tree.sort_dim]
            assert (np.diff(values) >= 0).all()
            assert np.allclose(leaf.sort_values, values)

    def test_describe_summary(self, small_uniform):
        tree = EpsilonKdbTree.build(
            small_uniform, JoinSpec(epsilon=0.15, leaf_size=32)
        )
        info = tree.describe()
        assert info.points == len(small_uniform)
        assert info.leaves >= 1
        assert info.dims == small_uniform.shape[1]
        assert len(tree) == len(small_uniform)

    def test_custom_split_order_used(self, small_uniform):
        spec = JoinSpec(epsilon=0.15, leaf_size=32, split_order=[7, 6, 5, 4, 3, 2, 1, 0])
        tree = EpsilonKdbTree.build(small_uniform, spec)
        assert isinstance(tree.root, InternalNode)
        assert tree.root.split_dim == 7

    def test_degenerate_epsilon_larger_than_span(self):
        """eps >= span means one cell everywhere: the tree is one leaf."""
        points = np.random.default_rng(1).random((300, 4))
        tree = EpsilonKdbTree.build(points, JoinSpec(epsilon=5.0, leaf_size=16))
        assert isinstance(tree.root, LeafNode)
        assert tree.root.size == 300

    def test_empty_relation_builds_degenerate_tree(self):
        tree = EpsilonKdbTree.build(np.empty((0, 3)), JoinSpec(epsilon=0.1))
        assert len(tree) == 0
        assert isinstance(tree.root, LeafNode)

    def test_identical_points_do_not_recurse_forever(self):
        points = np.tile([[0.5, 0.5]], (500, 1))
        tree = EpsilonKdbTree.build(points, JoinSpec(epsilon=0.1, leaf_size=8))
        assert leaf_point_count(tree) == 500


class TestIncrementalInsert:
    def test_incremental_matches_bulk_point_set(self, small_clusters):
        spec = JoinSpec(epsilon=0.1, leaf_size=32)
        tree = EpsilonKdbTree.empty(small_clusters, spec)
        for index in range(len(small_clusters)):
            tree.insert(index)
        tree.finalize()
        assert leaf_point_count(tree) == len(small_clusters)
        check_cell_containment(tree)

    def test_incremental_leaf_split_threshold(self):
        rng = np.random.default_rng(3)
        points = rng.random((200, 3))
        spec = JoinSpec(epsilon=0.2, leaf_size=10)
        tree = EpsilonKdbTree.empty(points, spec)
        for index in range(len(points)):
            tree.insert(index)
        for leaf in tree.iter_leaves():
            if leaf.level < len(tree.split_order):
                assert leaf.size <= spec.leaf_size + 1 or leaf.level == len(
                    tree.split_order
                )

    def test_finalize_is_idempotent(self, small_uniform):
        tree = EpsilonKdbTree.build(small_uniform, JoinSpec(epsilon=0.2))
        first = [leaf.indices.copy() for leaf in tree.iter_leaves()]
        tree.finalize()
        second = [leaf.indices for leaf in tree.iter_leaves()]
        for a, b in zip(first, second):
            assert (a == b).all()

    def test_insert_after_finalize_marks_dirty(self):
        points = np.random.default_rng(4).random((50, 2))
        spec = JoinSpec(epsilon=0.3, leaf_size=100)
        tree = EpsilonKdbTree.empty(points, spec)
        for index in range(49):
            tree.insert(index)
        tree.finalize()
        tree.insert(49)
        tree.finalize()
        assert leaf_point_count(tree) == 50
