"""Tests for the incremental streaming join engine.

The headline property (ISSUE 6): after **every** prefix of **any**
update stream, the accumulated emitted pairs minus the retracted pairs
must be byte-identical to a from-scratch batch join over the surviving
points.  A hypothesis ``RuleBasedStateMachine`` drives random
interleavings of insert/delete/compact against the brute-force oracle;
deterministic tests pin down the individual mechanisms (delta-buffer
probes, the out-of-grid fallback, compaction atomicity under injected
faults, the join-size sketch, the stats plumbing).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from _oracles import assert_same_pairs, oracle_self_pairs
from repro import JoinSpec, similarity_join
from repro.core.incremental import (
    IncrementalJoin,
    JoinSizeSketch,
    UpdateDelta,
    apply_update_stream,
    normalize_update,
    subtract_pairs,
)
from repro.core.resilience import FaultPlan
from repro.errors import InvalidParameterError, TransientIoError

EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def oracle_id_pairs(mirror: dict, spec: JoinSpec) -> np.ndarray:
    """Brute-force join over a mirror {id: point}, mapped back to ids."""
    ids = np.array(sorted(mirror), dtype=np.int64)
    if len(ids) < 2:
        return EMPTY_PAIRS.copy()
    points = np.array([mirror[int(i)] for i in ids])
    local = oracle_self_pairs(points, spec)
    if not len(local):
        return EMPTY_PAIRS.copy()
    pairs = ids[local]
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


class SessionHarness:
    """An IncrementalJoin plus the mirror and accumulators to audit it."""

    def __init__(self, spec: JoinSpec, **session_kwargs):
        self.spec = spec
        self.session = IncrementalJoin(spec, **session_kwargs)
        self.mirror: dict = {}
        self.added = []
        self.retracted = []

    def insert(self, points: np.ndarray) -> UpdateDelta:
        delta = self.session.insert(points)
        assert len(delta.ids) == len(points)
        if len(delta.added):
            self.added.append(delta.added)
        for offset, point_id in enumerate(delta.ids):
            self.mirror[int(point_id)] = np.asarray(points, dtype=np.float64)[offset]
        return delta

    def delete(self, ids) -> UpdateDelta:
        delta = self.session.delete(ids)
        if len(delta.retracted):
            self.retracted.append(delta.retracted)
        for point_id in np.asarray(ids, dtype=np.int64):
            del self.mirror[int(point_id)]
        return delta

    def accumulated(self) -> np.ndarray:
        added = np.concatenate(self.added) if self.added else EMPTY_PAIRS
        retracted = (
            np.concatenate(self.retracted) if self.retracted else EMPTY_PAIRS
        )
        return subtract_pairs(added, retracted)

    def check(self, label: str = "") -> None:
        expected = oracle_id_pairs(self.mirror, self.spec)
        assert_same_pairs(self.accumulated(), expected, f"incremental {label}")
        assert self.session.n_live == len(self.mirror), label
        live = self.session.live_ids()
        assert live.tolist() == sorted(self.mirror), label


# ----------------------------------------------------------------------
# deterministic unit tests
# ----------------------------------------------------------------------
class TestIncrementalBasics:
    SPEC = dict(epsilon=0.3, leaf_size=8)

    def test_single_batch_equals_batch_join(self):
        points = np.random.default_rng(0).random((80, 4))
        harness = SessionHarness(JoinSpec(**self.SPEC))
        delta = harness.insert(points)
        assert delta.ids.tolist() == list(range(80))
        assert len(delta.retracted) == 0
        harness.check("single batch")

    def test_second_batch_emits_only_new_pairs(self):
        rng = np.random.default_rng(1)
        harness = SessionHarness(JoinSpec(**self.SPEC))
        first = harness.insert(rng.random((50, 3)))
        second = harness.insert(rng.random((30, 3)))
        # Disjoint: a pair is emitted exactly once across the stream.
        seen = {tuple(p) for p in first.added.tolist()}
        assert not seen.intersection(tuple(p) for p in second.added.tolist())
        harness.check("two batches")

    def test_delete_retracts_exactly_incident_pairs(self):
        rng = np.random.default_rng(2)
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(rng.random((60, 3)))
        before = harness.accumulated()
        delta = harness.delete([3, 17, 41])
        gone = {tuple(p) for p in delta.retracted.tolist()}
        assert all(3 in p or 17 in p or 41 in p for p in gone)
        assert gone <= {tuple(p) for p in before.tolist()}
        harness.check("after delete")

    def test_interleaved_stream_with_compactions(self):
        """A long seeded stream crossing the compaction threshold often."""
        rng = np.random.default_rng(3)
        spec = JoinSpec(epsilon=0.35, leaf_size=8, delta_threshold=25)
        harness = SessionHarness(spec)
        for step in range(30):
            action = rng.random()
            if action < 0.6 or len(harness.mirror) < 5:
                harness.insert(rng.random((int(rng.integers(1, 12)), 3)))
            elif action < 0.85:
                live = sorted(harness.mirror)
                size = min(len(live), int(rng.integers(1, 5)))
                harness.delete(rng.choice(live, size=size, replace=False))
            else:
                harness.session.compact()
            harness.check(f"step {step}")
        assert harness.session.stats.compactions > 0

    def test_ids_are_never_reused(self):
        rng = np.random.default_rng(4)
        harness = SessionHarness(JoinSpec(**self.SPEC))
        first = harness.insert(rng.random((10, 2)))
        harness.delete(first.ids)
        second = harness.insert(rng.random((10, 2)))
        assert second.ids.min() == 10  # deletion frees no ids
        harness.check("after reuse window")

    def test_out_of_grid_batch_takes_fallback_and_stays_exact(self):
        rng = np.random.default_rng(5)
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(rng.random((40, 3)))
        harness.session.compact()  # base grid now fits [0, 1]^3
        shifted = rng.random((15, 3)) + 0.9  # straddles the base box
        harness.insert(shifted)
        harness.check("out-of-grid insert")
        far = rng.random((10, 3)) - 5.0
        harness.insert(far)
        harness.check("far insert")
        harness.delete(harness.session.live_ids()[-5:])
        harness.check("delete out-of-grid points")

    def test_empty_and_tiny_batches(self):
        harness = SessionHarness(JoinSpec(**self.SPEC))
        delta = harness.insert(np.empty((0, 3)))
        assert len(delta.ids) == 0 and len(delta.added) == 0
        harness.insert(np.array([[0.5, 0.5, 0.5]]))
        harness.insert(np.array([[0.5, 0.5, 0.51]]))
        harness.check("tiny")
        harness.session.compact()  # single-digit base still probes fine
        harness.insert(np.array([[0.5, 0.5, 0.49]]))
        harness.check("tiny after compact")

    def test_delete_unknown_id_raises(self):
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(np.random.default_rng(6).random((5, 2)))
        with pytest.raises(InvalidParameterError, match="unknown point id"):
            harness.session.delete([99])

    def test_delete_twice_raises(self):
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(np.random.default_rng(7).random((5, 2)))
        harness.delete([2])
        with pytest.raises(InvalidParameterError, match="already deleted"):
            harness.session.delete([2])

    def test_delete_duplicate_ids_raises(self):
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(np.random.default_rng(8).random((5, 2)))
        with pytest.raises(InvalidParameterError, match="duplicates"):
            harness.session.delete([1, 1])

    def test_dimension_mismatch_raises(self):
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(np.random.default_rng(9).random((5, 3)))
        with pytest.raises(InvalidParameterError, match="dimensional"):
            harness.session.insert(np.random.default_rng(9).random((5, 4)))

    @pytest.mark.parametrize("poison", [np.nan, np.inf, -np.inf])
    def test_nan_inf_batch_rejected_up_front(self, poison):
        """Satellite: a batch with non-finite coordinates raises the
        typed error before any state mutates."""
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(np.random.default_rng(10).random((6, 2)))
        before_pairs = harness.accumulated()
        bad = np.random.default_rng(11).random((3, 2))
        bad[1, 1] = poison
        with pytest.raises(
            InvalidParameterError, match="insert batch contains NaN"
        ):
            harness.session.insert(bad)
        # untouched: same live set, same ids, same pair ledger, and the
        # next insert continues the id sequence without a gap
        assert harness.session.n_live == 6
        assert harness.session._next_id == 6
        assert np.array_equal(harness.accumulated(), before_pairs)
        delta = harness.insert(np.random.default_rng(12).random((2, 2)))
        assert delta.ids.tolist() == [6, 7]
        harness.check("after rejected batch")

    def test_nan_batch_never_reaches_the_journal(self, tmp_path):
        """With persistence on, a rejected batch must not leave a WAL
        record: the reopened session has the same update seq."""
        path = str(tmp_path / "session")
        session = IncrementalJoin(
            JoinSpec(epsilon=0.3, persist_path=path, delta_threshold=100)
        )
        session.insert(np.random.default_rng(13).random((4, 2)))
        bad = np.array([[0.1, np.nan]])
        with pytest.raises(InvalidParameterError, match="NaN"):
            session.insert(bad)
        assert session.last_update_seq == 1
        session.close()
        reopened = IncrementalJoin.open(path)
        assert reopened.last_update_seq == 1
        assert reopened.stats.wal_records_replayed == 1
        reopened.close()

    def test_invalid_engine_rejected(self):
        with pytest.raises(InvalidParameterError, match="engine"):
            IncrementalJoin(JoinSpec(epsilon=0.3), engine="gpu")
        with pytest.raises(InvalidParameterError, match="io_retries"):
            IncrementalJoin(JoinSpec(epsilon=0.3), io_retries=-1)

    def test_live_points_in_id_order(self):
        rng = np.random.default_rng(10)
        harness = SessionHarness(JoinSpec(**self.SPEC))
        harness.insert(rng.random((20, 2)))
        harness.session.compact()
        harness.insert(rng.random((10, 2)))
        harness.delete([0, 25])
        live = harness.session.live_points()
        expected = np.array([harness.mirror[i] for i in sorted(harness.mirror)])
        assert np.array_equal(live, expected)
        assert len(harness.session) == len(harness.mirror)

    def test_parallel_engine_is_byte_identical(self):
        rng = np.random.default_rng(11)
        spec = JoinSpec(epsilon=0.3, leaf_size=8, delta_threshold=30)
        stream = [("insert", rng.random((35, 4))) for _ in range(3)]
        stream.append(("delete", list(range(10, 30))))
        serial = IncrementalJoin(spec)
        parallel = IncrementalJoin(
            spec, engine="parallel", use_processes=False, n_workers=3
        )
        added_s, retracted_s = apply_update_stream(serial, stream)
        added_p, retracted_p = apply_update_stream(parallel, stream)
        assert_same_pairs(
            subtract_pairs(added_p, retracted_p),
            subtract_pairs(added_s, retracted_s),
            "parallel vs serial session",
        )


class TestCompaction:
    def test_auto_compaction_triggers_at_threshold(self):
        rng = np.random.default_rng(20)
        spec = JoinSpec(epsilon=0.3, leaf_size=8, delta_threshold=10)
        session = IncrementalJoin(spec)
        session.insert(rng.random((10, 3)))
        assert session.stats.compactions == 0  # at threshold, not over
        session.insert(rng.random((1, 3)))
        assert session.stats.compactions == 1
        assert session.delta_size == 0
        assert session.stats.delta_size == 0

    def test_explicit_compact_emits_nothing(self):
        rng = np.random.default_rng(21)
        harness = SessionHarness(JoinSpec(epsilon=0.3, leaf_size=8))
        harness.insert(rng.random((40, 3)))
        before = harness.accumulated()
        harness.session.compact()
        assert_same_pairs(harness.accumulated(), before, "compact is silent")
        harness.check("after explicit compact")

    def test_compact_folds_tombstones(self):
        rng = np.random.default_rng(22)
        harness = SessionHarness(JoinSpec(epsilon=0.3, leaf_size=8))
        harness.insert(rng.random((30, 3)))
        harness.session.compact()
        harness.delete([5, 6, 7])
        harness.session.compact()  # tombstoned base rows must be dropped
        assert harness.session._base_alive.all()
        assert len(harness.session._base_points) == 27
        harness.check("tombstone fold")

    def test_noop_compact_early_returns(self):
        session = IncrementalJoin(JoinSpec(epsilon=0.3))
        session.compact()  # empty session: nothing to do
        assert session.stats.compactions == 0
        rng = np.random.default_rng(23)
        session.insert(rng.random((10, 3)))
        session.compact()
        session.compact()  # no delta, no tombstones -> no-op
        assert session.stats.compactions == 1

    def test_tree_cache_reuse_across_compactions(self):
        """Deleting a batch and re-inserting identical content makes the
        compacted base byte-identical to a previous one, so the shared
        TreeCache serves the rebuild without sorting."""
        rng = np.random.default_rng(24)
        base = rng.random((40, 3))
        extra = rng.random((10, 3))
        spec = JoinSpec(epsilon=0.3, leaf_size=8)
        session = IncrementalJoin(spec)
        session.insert(base)
        session.compact()
        delta = session.insert(extra)
        session.compact()  # caches the (base + extra) tree
        assert session.stats.structure_cache_hits == 0
        session.delete(delta.ids)
        session.insert(extra)  # same coordinates, new ids
        session.compact()  # same point content in the same order
        assert session.stats.structure_cache_hits == 1

    def test_injected_fault_is_retried_and_counted(self):
        rng = np.random.default_rng(25)
        plan = FaultPlan(seed=9).fail_page_read(0)
        session = IncrementalJoin(
            JoinSpec(epsilon=0.3, leaf_size=8), fault_plan=plan, io_retries=2
        )
        harness_points = rng.random((30, 3))
        session.insert(harness_points)
        session.compact()
        assert session.stats.faults_injected == 1
        assert session.stats.storage_retries == 1
        assert session.stats.compactions == 1
        assert plan.injected == 1

    def test_exhausted_retries_leave_session_untouched(self):
        rng = np.random.default_rng(26)
        plan = FaultPlan(seed=9).fail_page_read(0, 1, 2, 3, 4)
        spec = JoinSpec(epsilon=0.3, leaf_size=8)
        session = IncrementalJoin(spec, fault_plan=plan, io_retries=2)
        harness = SessionHarness(spec)
        harness.session = session
        harness.insert(rng.random((25, 3)))
        snapshot = (
            session.n_live,
            session.delta_size,
            session.stats.compactions,
            len(session._base_points),
        )
        with pytest.raises(TransientIoError):
            session.compact()
        assert (
            session.n_live,
            session.delta_size,
            session.stats.compactions,
            len(session._base_points),
        ) == snapshot
        # the session keeps answering exactly after the failed compaction
        harness.insert(rng.random((10, 3)))
        harness.check("after failed compaction")

    def test_faulty_compaction_stream_stays_exact(self):
        """Faults at several attempt ordinals; retries keep every delta
        byte-identical to the fault-free run."""
        rng = np.random.default_rng(27)
        batches = [rng.random((20, 3)) for _ in range(4)]
        spec = JoinSpec(epsilon=0.35, leaf_size=8, delta_threshold=15)

        def run(fault_plan):
            session = IncrementalJoin(
                spec, fault_plan=fault_plan, io_retries=2
            )
            stream = [("insert", batch) for batch in batches]
            stream.append(("delete", list(range(5, 25))))
            added, retracted = apply_update_stream(session, stream)
            return subtract_pairs(added, retracted), session

        clean_pairs, _ = run(None)
        faulty_pairs, faulty = run(FaultPlan(seed=13).fail_page_read(0, 2))
        assert_same_pairs(faulty_pairs, clean_pairs, "faulty compaction stream")
        assert faulty.stats.faults_injected == 2
        assert faulty.stats.storage_retries == 2


class TestJoinSizeSketch:
    def test_estimate_tracks_known_duplicates(self):
        sketch = JoinSizeSketch(cell_width=0.1, bits=12)
        point = np.full((1, 4), 0.5)
        sketch.add(np.repeat(point, 30, axis=0))
        # 30 identical points: C(30, 2) same-cell pairs, no collisions.
        assert sketch.estimate() == pytest.approx(435.0, rel=0.01)

    def test_add_remove_inverse(self):
        rng = np.random.default_rng(30)
        sketch = JoinSizeSketch(cell_width=0.2, bits=10)
        first = rng.random((50, 3))
        second = rng.random((20, 3))
        sketch.add(first)
        state = (sketch.n, sketch._same_bucket_pairs, sketch.counts.copy())
        sketch.add(second)
        sketch.remove(second)
        assert sketch.n == state[0]
        assert sketch._same_bucket_pairs == state[1]
        assert np.array_equal(sketch.counts, state[2])

    def test_estimate_empty_and_single(self):
        sketch = JoinSizeSketch(cell_width=0.1)
        assert sketch.estimate() == 0.0
        sketch.add(np.array([[0.1, 0.2]]))
        assert sketch.estimate() == 0.0

    def test_remove_never_added_raises(self):
        sketch = JoinSizeSketch(cell_width=0.1)
        sketch.add(np.array([[0.95, 0.95]]))
        with pytest.raises(InvalidParameterError, match="never added"):
            sketch.remove(np.array([[0.05, 0.05], [0.05, 0.05]]))

    def test_dimension_mismatch_raises(self):
        sketch = JoinSizeSketch(cell_width=0.1)
        sketch.add(np.array([[0.1, 0.2]]))
        with pytest.raises(InvalidParameterError, match="dimensional"):
            sketch.add(np.array([[0.1, 0.2, 0.3]]))

    def test_invalid_cell_width_raises(self):
        with pytest.raises(InvalidParameterError, match="cell_width"):
            JoinSizeSketch(cell_width=0.0)

    def test_estimate_within_factor_on_clustered_data(self):
        """The sketch estimates same-cell pairs — a constant-factor proxy
        documented in docs/streaming.md and measured by E18.  On a
        clustered workload it must land within an order of magnitude."""
        from repro.datasets import gaussian_clusters

        points = gaussian_clusters(800, 6, clusters=5, sigma=0.05, seed=31)
        spec = JoinSpec(epsilon=0.4, leaf_size=32)
        session = IncrementalJoin(spec)
        session.insert(points)
        truth = len(similarity_join(points, epsilon=0.4))
        estimate = session.estimated_join_size
        assert truth > 0
        assert truth / 16 <= estimate <= truth * 16

    def test_deterministic_across_sessions(self):
        rng = np.random.default_rng(32)
        points = rng.random((100, 4))
        spec = JoinSpec(epsilon=0.3)
        first = IncrementalJoin(spec)
        second = IncrementalJoin(spec)
        first.insert(points)
        second.insert(points)
        assert first.estimated_join_size == second.estimated_join_size


class TestUpdateStreamApi:
    def test_similarity_join_updates_matches_scratch(self):
        rng = np.random.default_rng(40)
        base = rng.random((60, 4))
        extra = rng.random((25, 4))
        pairs = similarity_join(
            base,
            epsilon=0.3,
            updates=[("insert", extra), ("delete", list(range(0, 20)))],
            delta_threshold=32,
        )
        survivors = np.concatenate([base[20:], extra])
        idmap = np.concatenate([np.arange(20, 60), np.arange(60, 85)])
        expected = idmap[similarity_join(survivors, epsilon=0.3)]
        expected = expected[np.lexsort((expected[:, 1], expected[:, 0]))]
        assert_same_pairs(pairs, expected, "similarity_join updates")

    def test_similarity_join_updates_return_result_stats(self):
        rng = np.random.default_rng(41)
        result = similarity_join(
            rng.random((30, 3)),
            epsilon=0.3,
            updates=[("insert", rng.random((10, 3)))],
            return_result=True,
        )
        assert result.stats.updates_applied == 2
        assert result.stats.estimated_join_size >= 0.0
        assert result.stats.pairs_emitted >= len(result.pairs)

    def test_similarity_join_updates_rejects_two_set_and_baselines(self):
        rng = np.random.default_rng(42)
        points = rng.random((10, 3))
        with pytest.raises(InvalidParameterError, match="two-set"):
            similarity_join(
                points, points, epsilon=0.3, updates=[("insert", points)]
            )
        with pytest.raises(InvalidParameterError, match="epsilon-kdb"):
            similarity_join(
                points,
                epsilon=0.3,
                algorithm="grid",
                updates=[("insert", points)],
            )

    def test_normalize_update_shapes(self):
        points = [[0.1, 0.2]]
        assert normalize_update(("insert", points)) == ("insert", points)
        assert normalize_update({"op": "insert", "points": points}) == (
            "insert",
            points,
        )
        assert normalize_update({"op": "delete", "ids": [1]}) == ("delete", [1])
        with pytest.raises(InvalidParameterError, match="points"):
            normalize_update({"op": "insert"})
        with pytest.raises(InvalidParameterError, match="ids"):
            normalize_update({"op": "delete"})
        with pytest.raises(InvalidParameterError, match='"op"'):
            normalize_update({"op": "upsert"})
        with pytest.raises(InvalidParameterError, match="each update"):
            normalize_update(("insert",))

    def test_subtract_pairs(self):
        pairs = np.array([[0, 1], [0, 2], [1, 2], [2, 3]], dtype=np.int64)
        remove = np.array([[0, 2], [2, 3]], dtype=np.int64)
        out = subtract_pairs(pairs, remove)
        assert out.tolist() == [[0, 1], [1, 2]]
        assert subtract_pairs(EMPTY_PAIRS, EMPTY_PAIRS).shape == (0, 2)
        assert subtract_pairs(pairs, EMPTY_PAIRS).tolist() == pairs.tolist()


class TestStreamingStatsPlumbing:
    def test_new_fields_flow_through_as_dict_and_metrics(self):
        rng = np.random.default_rng(50)
        spec = JoinSpec(epsilon=0.3, leaf_size=8, delta_threshold=10)
        session = IncrementalJoin(spec)
        session.insert(rng.random((25, 3)))
        session.delete([0, 1])
        data = session.stats.as_dict()
        for name in (
            "updates_applied",
            "delta_size",
            "compactions",
            "pairs_retracted",
            "estimated_join_size",
        ):
            assert name in data
        assert data["updates_applied"] == 2
        assert data["compactions"] >= 1

        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.ingest_stats(session.stats)
        assert registry.counter("join.updates_applied").value == 2
        assert registry.counter("join.compactions").value >= 1
        assert registry.gauge("join.estimated_join_size").value >= 0.0

    def test_merge_semantics(self):
        from repro.core.result import JoinStats

        first = JoinStats(
            updates_applied=2,
            delta_size=7,
            compactions=1,
            pairs_retracted=3,
            estimated_join_size=10.0,
        )
        second = JoinStats(
            updates_applied=1,
            delta_size=4,
            compactions=2,
            pairs_retracted=1,
            estimated_join_size=25.0,
        )
        first.merge(second)
        assert first.updates_applied == 3
        assert first.delta_size == 7  # gauge: max
        assert first.compactions == 3
        assert first.pairs_retracted == 4
        assert first.estimated_join_size == 25.0  # gauge: max

    def test_cli_renderer_handles_estimate(self):
        from repro.cli import _render_stat

        assert _render_stat("estimated_join_size", 1234.4) == "1.23k"
        assert _render_stat("delta_size", 42) == "42"


# ----------------------------------------------------------------------
# the stateful hypothesis machine
# ----------------------------------------------------------------------
# Quantized coordinates in a 3-cube spanning [0, 1.5]: ties and
# boundary-exact distances are common, batches regularly escape the
# current base grid (exercising the fallback), and epsilon=0.4 keeps the
# pair density meaningful.
_coord = st.integers(min_value=0, max_value=12).map(lambda v: v / 8.0)
_point = st.tuples(_coord, _coord, _coord)
_batch = st.lists(_point, min_size=1, max_size=6)

_MACHINE_SPEC = JoinSpec(
    epsilon=0.4, leaf_size=4, delta_threshold=8, sketch_bits=8
)


class IncrementalJoinMachine(RuleBasedStateMachine):
    """Random interleavings of insert/delete/compact, oracle-checked
    after every step (the ISSUE 6 acceptance property)."""

    def __init__(self):
        super().__init__()
        self.harness = SessionHarness(_MACHINE_SPEC)
        self.steps = 0

    @rule(batch=_batch)
    def insert(self, batch):
        self.harness.insert(np.array(batch, dtype=np.float64))
        self.steps += 1

    @precondition(lambda self: len(self.harness.mirror) > 0)
    @rule(data=st.data())
    def delete(self, data):
        live = sorted(self.harness.mirror)
        subset = data.draw(
            st.lists(st.sampled_from(live), min_size=1, unique=True),
            label="ids",
        )
        self.harness.delete(subset)
        self.steps += 1

    @rule()
    def compact(self):
        self.harness.session.compact()
        self.steps += 1

    @invariant()
    def emitted_deltas_match_scratch_join(self):
        self.harness.check(f"machine step {self.steps}")


IncrementalJoinMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)

TestIncrementalJoinStateful = IncrementalJoinMachine.TestCase


# ----------------------------------------------------------------------
# admission control (ISSUE 8)
# ----------------------------------------------------------------------
class TestAdmissionThreshold:
    def _dense_batch(self, n, dims=2):
        # A tight clump: the sketch predicts ~C(n, 2) same-cell pairs.
        return np.full((n, dims), 0.5) + np.arange(n)[:, None] * 1e-6

    def test_oversized_batch_refused_without_mutation(self):
        from repro.errors import AdmissionError

        rng = np.random.default_rng(40)
        spec = JoinSpec(epsilon=0.2, admission_threshold=100.0)
        session = IncrementalJoin(spec)
        session.insert(rng.random((10, 2)))
        before_ids = session.live_ids().copy()
        before_est = session.estimated_join_size
        before_seq = session.last_update_seq
        with pytest.raises(AdmissionError, match="admission threshold"):
            session.insert(self._dense_batch(50))
        # Nothing moved: ids, sequence, sketch, pair ledger.
        assert np.array_equal(session.live_ids(), before_ids)
        assert session.last_update_seq == before_seq
        assert session.estimated_join_size == before_est
        assert session.stats.batches_rejected == 1
        # The session still works afterwards.
        delta = session.insert(rng.random((5, 2)))
        assert len(delta.ids) == 5

    def test_refused_batch_not_journaled(self, tmp_path):
        from repro.errors import AdmissionError

        path = str(tmp_path / "session")
        rng = np.random.default_rng(41)
        spec = JoinSpec(
            epsilon=0.2, admission_threshold=100.0, persist_path=path
        )
        session = IncrementalJoin(spec)
        session.insert(rng.random((10, 2)))
        with pytest.raises(AdmissionError):
            session.insert(self._dense_batch(60))
        expected_pairs = session.current_pairs()
        session.close()
        # Recovery replays the journal; a journaled refused batch would
        # resurface here as extra points.
        recovered = IncrementalJoin.open(path)
        assert recovered.n_live == 10
        assert np.array_equal(recovered.current_pairs(), expected_pairs)
        assert recovered.stats.batches_rejected == 0
        recovered.close()

    def test_refusal_on_first_insert_leaves_fresh_session(self):
        from repro.errors import AdmissionError

        spec = JoinSpec(epsilon=0.2, admission_threshold=10.0)
        session = IncrementalJoin(spec)
        with pytest.raises(AdmissionError):
            session.insert(self._dense_batch(30, dims=3))
        assert session.n_live == 0
        assert session.dims is None
        # A later, differently-dimensioned insert must not trip over a
        # sketch left behind by the refused batch.
        delta = session.insert(np.random.default_rng(42).random((4, 5)))
        assert len(delta.ids) == 4

    def test_no_threshold_admits_everything(self):
        spec = JoinSpec(epsilon=0.2)
        session = IncrementalJoin(spec)
        delta = session.insert(self._dense_batch(40))
        assert len(delta.ids) == 40
        assert session.stats.batches_rejected == 0

    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError, match="admission_threshold"):
            JoinSpec(epsilon=0.1, admission_threshold=-1.0)
        with pytest.raises(InvalidParameterError, match="admission_threshold"):
            JoinSpec(epsilon=0.1, admission_threshold=float("nan"))

    def test_batches_rejected_merges(self):
        from repro.core.result import JoinStats

        first, second = JoinStats(), JoinStats()
        first.batches_rejected = 2
        second.batches_rejected = 3
        first.merge(second)
        assert first.batches_rejected == 5
        assert first.as_dict()["batches_rejected"] == 5
