"""Tests for selectivity analysis and reporting helpers."""

import math

import numpy as np
import pytest

from repro import JoinSpec
from repro.analysis import (
    Table,
    ball_volume,
    estimate_selectivity,
    expected_pairs_uniform,
    format_seconds,
    format_si,
)
from repro.analysis.stats import epsilon_for_selectivity
from repro.baselines import brute_force_self_join
from repro.datasets import uniform_points
from repro.errors import InvalidParameterError


class TestBallVolume:
    def test_l2_known_values(self):
        assert ball_volume(1.0, 2, "l2") == pytest.approx(math.pi)
        assert ball_volume(1.0, 3, "l2") == pytest.approx(4.0 / 3.0 * math.pi)

    def test_linf_is_cube(self):
        assert ball_volume(0.5, 4, "linf") == pytest.approx(1.0)
        assert ball_volume(0.25, 2, "linf") == pytest.approx(0.25)

    def test_l1_cross_polytope(self):
        assert ball_volume(1.0, 2, "l1") == pytest.approx(2.0)
        assert ball_volume(1.0, 3, "l1") == pytest.approx(8.0 / 6.0)

    def test_scaling_law(self):
        for dims in (2, 5, 9):
            assert ball_volume(0.3, dims, "l2") == pytest.approx(
                ball_volume(1.0, dims, "l2") * 0.3**dims
            )

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ball_volume(-1.0, 3)
        with pytest.raises(InvalidParameterError):
            ball_volume(1.0, 0)
        with pytest.raises(InvalidParameterError):
            ball_volume(1.0, 3, metric=2.5)


class TestExpectedPairs:
    def test_matches_measured_on_uniform_linf(self):
        """L-infinity avoids boundary underestimation headaches the least;
        check the model is within a factor ~2 of truth in 2-d."""
        points = uniform_points(2000, 2, seed=0)
        eps = 0.05
        expected = expected_pairs_uniform(2000, 2, eps, "linf")
        measured = brute_force_self_join(points, JoinSpec(epsilon=eps, metric="linf")).count
        assert 0.4 * expected < measured < 1.5 * expected

    def test_probability_capped_at_one(self):
        assert expected_pairs_uniform(10, 2, 100.0) == 45.0


class TestEpsilonForSelectivity:
    def test_roundtrip(self):
        for dims in (2, 8, 16):
            eps = epsilon_for_selectivity(1e-4, dims, "l2")
            assert ball_volume(eps, dims, "l2") == pytest.approx(1e-4)

    def test_grows_with_dimensionality(self):
        values = [epsilon_for_selectivity(1e-4, d, "l2") for d in (2, 8, 16, 32)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            epsilon_for_selectivity(0.0, 4)


class TestEstimateSelectivity:
    def test_close_to_exact_on_small_data(self):
        points = uniform_points(400, 3, seed=1)
        spec = JoinSpec(epsilon=0.3)
        exact = brute_force_self_join(points, spec).count / (400 * 399 / 2)
        estimated = estimate_selectivity(points, 0.3, sample=400)
        assert estimated == pytest.approx(exact, rel=1e-9)

    def test_sampled_estimate_in_range(self):
        points = uniform_points(3000, 4, seed=2)
        spec = JoinSpec(epsilon=0.4)
        exact = brute_force_self_join(points, spec).count / (3000 * 2999 / 2)
        estimated = estimate_selectivity(points, 0.4, sample=256, seed=3)
        assert 0.5 * exact < estimated < 2.0 * exact

    def test_empty_input(self):
        assert estimate_selectivity(np.empty((0, 2)), 0.1) == 0.0


class TestFormatting:
    def test_format_si(self):
        assert format_si(950) == "950"
        assert format_si(12_400) == "12.4k"
        assert format_si(3_000_000) == "3M"
        assert format_si(2.5e9) == "2.5G"

    def test_format_seconds(self):
        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.25).endswith("ms")
        assert format_seconds(3.0) == "3.00s"

    def test_table_renders_aligned(self):
        table = Table("demo", ["a", "long-header"])
        table.add_row(1, 2)
        table.add_row("xx", "yyyy")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "long-header" in lines[2]
        assert len({len(line) for line in lines[3:]}) <= 2

    def test_table_rejects_wrong_arity(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)
