"""Tests for the R+-tree and its spatial join."""

import itertools

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import JoinSpec
from repro.baselines import RPlusTree, rplus_join, rplus_self_join
from repro.datasets import gaussian_clusters
from repro.errors import InvalidParameterError
from repro.metrics import L2, LINF


def collect_point_entries(tree):
    out = []
    for leaf in tree.iter_leaves():
        out.extend(leaf.entries)
    return sorted(out)


def interiors_overlap(lo_a, hi_a, lo_b, hi_b):
    """Whether two boxes overlap with positive volume in every dimension."""
    return bool(np.all(np.minimum(hi_a, hi_b) - np.maximum(lo_a, lo_b) > 0))


class TestStructure:
    def test_contains_every_point_once(self, small_uniform):
        tree = RPlusTree.bulk_load(small_uniform, max_entries=16)
        assert collect_point_entries(tree) == list(range(len(small_uniform)))

    def test_no_duplication_for_points(self, small_clusters):
        """The defining R+ property on point data: zero duplication."""
        tree = RPlusTree.bulk_load(small_clusters, max_entries=8)
        entries = collect_point_entries(tree)
        assert len(entries) == len(set(entries)) == len(small_clusters)

    def test_sibling_interiors_disjoint(self, small_uniform):
        """Sibling MBR interiors never overlap — the R+ invariant."""
        tree = RPlusTree.bulk_load(small_uniform, max_entries=16)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            for a, b in itertools.combinations(node.entries, 2):
                assert not interiors_overlap(a.lo, a.hi, b.lo, b.hi)
            stack.extend(node.entries)

    def test_mbr_containment(self, small_uniform):
        tree = RPlusTree.bulk_load(small_uniform, max_entries=16)

        def visit(node):
            if node.is_leaf:
                block = tree.points[np.asarray(node.entries)]
            else:
                bounds = [visit(child) for child in node.entries]
                block = np.vstack(
                    [np.array([b[0], b[1]]) for b in bounds]
                )
            lo, hi = block.min(axis=0), block.max(axis=0)
            assert np.allclose(node.lo, lo) and np.allclose(node.hi, hi)
            return node.lo, node.hi

        visit(tree.root)

    def test_fanout_respected(self, small_uniform):
        tree = RPlusTree.bulk_load(small_uniform, max_entries=8)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            assert len(node.entries) <= 8
            if not node.is_leaf:
                stack.extend(node.entries)

    def test_empty_and_single(self):
        assert len(RPlusTree.bulk_load(np.empty((0, 2)))) == 0
        tree = RPlusTree.bulk_load(np.array([[0.4, 0.2]]))
        assert collect_point_entries(tree) == [0]

    def test_rejects_tiny_fanout(self):
        with pytest.raises(InvalidParameterError):
            RPlusTree(np.zeros((1, 2)), max_entries=1)

    def test_duplicate_points_terminate(self):
        points = np.tile([[0.5, 0.5]], (200, 1))
        tree = RPlusTree.bulk_load(points, max_entries=8)
        assert len(collect_point_entries(tree)) == 200


class TestRangeQuery:
    @pytest.mark.parametrize("metric", [L2, LINF])
    def test_matches_linear_scan(self, metric, small_clusters):
        tree = RPlusTree.bulk_load(small_clusters, max_entries=16)
        rng = np.random.default_rng(17)
        for _ in range(15):
            query = rng.random(small_clusters.shape[1])
            eps = float(rng.uniform(0.05, 0.3))
            hits = tree.range_query(query, eps, metric)
            diffs = np.abs(small_clusters - query)
            expected = np.flatnonzero(metric.within_gap(diffs, eps))
            assert hits.tolist() == expected.tolist()


class TestJoin:
    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    @pytest.mark.parametrize("eps", [0.05, 0.3])
    def test_self_join_matches_oracle(self, metric, eps, small_uniform):
        spec = JoinSpec(epsilon=eps, metric=metric)
        expected = oracle_self_pairs(small_uniform, spec)
        result = rplus_self_join(small_uniform, spec)
        assert_same_pairs(result.pairs, expected, f"rplus {metric}/{eps}")

    @pytest.mark.parametrize("max_entries", [4, 32])
    def test_fanout_never_changes_result(self, max_entries, small_clusters):
        spec = JoinSpec(epsilon=0.1)
        expected = oracle_self_pairs(small_clusters, spec)
        result = rplus_self_join(small_clusters, spec, max_entries=max_entries)
        assert_same_pairs(result.pairs, expected, f"rplus fanout={max_entries}")

    def test_two_set_join_matches_oracle(self):
        left = gaussian_clusters(500, 6, clusters=4, sigma=0.05, seed=61)
        right = gaussian_clusters(650, 6, clusters=4, sigma=0.05, seed=61) + 0.01
        spec = JoinSpec(epsilon=0.15)
        expected = oracle_two_set_pairs(left, right, spec)
        assert len(expected) > 0
        result = rplus_join(left, right, spec)
        assert_same_pairs(result.pairs, expected, "rplus two-set")

    def test_prebuilt_tree(self, small_uniform):
        spec = JoinSpec(epsilon=0.3)
        tree = RPlusTree.bulk_load(small_uniform)
        direct = rplus_self_join(small_uniform, spec)
        reused = rplus_self_join(small_uniform, spec, tree=tree)
        assert_same_pairs(reused.pairs, direct.pairs, "rplus prebuilt")

    def test_empty_inputs(self):
        spec = JoinSpec(epsilon=0.1)
        assert rplus_self_join(np.empty((0, 3)), spec).count == 0
        assert rplus_join(np.empty((0, 3)), np.zeros((2, 3)), spec).count == 0

    def test_dim_mismatch(self):
        with pytest.raises(InvalidParameterError):
            rplus_join(np.zeros((2, 2)), np.zeros((2, 3)), JoinSpec(epsilon=0.1))
