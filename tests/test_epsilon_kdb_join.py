"""Correctness tests for the epsilon-kdB join against the brute-force oracle."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import (
    EpsilonKdbTree,
    JoinSpec,
    PairCounter,
    epsilon_kdb_join,
    epsilon_kdb_self_join,
)
from repro.datasets import gaussian_clusters, uniform_points
from repro.errors import InvalidParameterError


@pytest.mark.parametrize("metric", ["l1", "l2", "linf", 3])
@pytest.mark.parametrize("eps", [0.05, 0.2, 0.6])
def test_self_join_matches_oracle_uniform(metric, eps, small_uniform):
    spec = JoinSpec(epsilon=eps, metric=metric, leaf_size=32)
    expected = oracle_self_pairs(small_uniform, spec)
    result = epsilon_kdb_self_join(small_uniform, spec)
    assert_same_pairs(result.pairs, expected, f"kdb self {metric}/{eps}")


@pytest.mark.parametrize("eps", [0.03, 0.1, 0.3])
def test_self_join_matches_oracle_clusters(eps, small_clusters):
    spec = JoinSpec(epsilon=eps, leaf_size=48)
    expected = oracle_self_pairs(small_clusters, spec)
    result = epsilon_kdb_self_join(small_clusters, spec)
    assert_same_pairs(result.pairs, expected, f"kdb self clusters/{eps}")


@pytest.mark.parametrize("leaf_size", [1, 4, 16, 100, 5000])
def test_leaf_size_never_changes_result(leaf_size, small_uniform):
    spec = JoinSpec(epsilon=0.25, leaf_size=leaf_size)
    expected = oracle_self_pairs(small_uniform, spec)
    result = epsilon_kdb_self_join(small_uniform, spec)
    assert_same_pairs(result.pairs, expected, f"leaf_size={leaf_size}")


def test_two_set_join_matches_oracle_with_overlap():
    # Same cluster layout on both sides forces real overlap.
    left = gaussian_clusters(700, 8, clusters=5, sigma=0.05, seed=42)
    right = gaussian_clusters(900, 8, clusters=5, sigma=0.05, seed=42) + 0.01
    spec = JoinSpec(epsilon=0.15, leaf_size=32)
    expected = oracle_two_set_pairs(left, right, spec)
    assert len(expected) > 0, "test workload must produce matches"
    result = epsilon_kdb_join(left, right, spec)
    assert_same_pairs(result.pairs, expected, "kdb two-set")


def test_two_set_join_orientation():
    left = np.array([[0.0, 0.0]])
    right = np.array([[0.05, 0.0], [0.9, 0.9]])
    result = epsilon_kdb_join(left, right, JoinSpec(epsilon=0.1))
    assert result.pairs.tolist() == [[0, 0]]


def test_two_set_disjoint_boxes():
    left = uniform_points(200, 4, seed=1)
    right = uniform_points(200, 4, seed=2) + 10.0
    result = epsilon_kdb_join(left, right, JoinSpec(epsilon=0.5))
    assert result.count == 0


def test_two_set_dim_mismatch_raises():
    with pytest.raises(InvalidParameterError):
        epsilon_kdb_join(np.zeros((3, 2)), np.zeros((3, 3)), JoinSpec(epsilon=0.1))


class TestSelfJoinInvariants:
    def test_no_self_pairs_and_ordered(self, small_uniform):
        result = epsilon_kdb_self_join(small_uniform, JoinSpec(epsilon=0.4))
        pairs = result.pairs
        assert (pairs[:, 0] < pairs[:, 1]).all()

    def test_each_pair_once(self, small_uniform):
        result = epsilon_kdb_self_join(small_uniform, JoinSpec(epsilon=0.4))
        assert len(np.unique(result.pairs, axis=0)) == len(result.pairs)

    def test_duplicate_points_all_pair(self):
        points = np.tile([[0.25, 0.75]], (30, 1))
        result = epsilon_kdb_self_join(points, JoinSpec(epsilon=0.01))
        assert result.count == 30 * 29 // 2

    def test_pairs_emitted_matches_len(self, small_uniform):
        result = epsilon_kdb_self_join(small_uniform, JoinSpec(epsilon=0.3))
        assert result.stats.pairs_emitted == len(result.pairs)


class TestEdgeCases:
    def test_empty_input(self):
        result = epsilon_kdb_self_join(np.empty((0, 3)), JoinSpec(epsilon=0.1))
        assert result.count == 0

    def test_single_point(self):
        result = epsilon_kdb_self_join(np.array([[0.5, 0.5]]), JoinSpec(epsilon=0.1))
        assert result.count == 0

    def test_two_points(self):
        points = np.array([[0.0, 0.0], [0.05, 0.05]])
        result = epsilon_kdb_self_join(points, JoinSpec(epsilon=0.1))
        assert result.pairs.tolist() == [[0, 1]]

    def test_one_dimensional_data(self):
        rng = np.random.default_rng(5)
        points = rng.random((300, 1))
        spec = JoinSpec(epsilon=0.02, leaf_size=16)
        expected = oracle_self_pairs(points, spec)
        result = epsilon_kdb_self_join(points, spec)
        assert_same_pairs(result.pairs, expected, "1-d")

    def test_epsilon_larger_than_diameter(self):
        points = np.random.default_rng(6).random((100, 3))
        result = epsilon_kdb_self_join(points, JoinSpec(epsilon=10.0))
        assert result.count == 100 * 99 // 2

    def test_points_on_cell_boundaries(self):
        # Exact multiples of eps sit on cell edges.
        values = np.arange(0, 11) * 0.1
        points = np.column_stack([values, values])
        spec = JoinSpec(epsilon=0.1, metric="linf", leaf_size=2)
        expected = oracle_self_pairs(points, spec)
        result = epsilon_kdb_self_join(points, spec)
        assert_same_pairs(result.pairs, expected, "boundaries")

    def test_empty_two_set_sides(self):
        points = np.random.default_rng(7).random((10, 2))
        empty = np.empty((0, 2))
        assert epsilon_kdb_join(points, empty, JoinSpec(epsilon=0.1)).count == 0
        assert epsilon_kdb_join(empty, points, JoinSpec(epsilon=0.1)).count == 0


class TestConfigurationVariants:
    def test_adjacency_pruning_off_same_result(self, small_clusters):
        on = epsilon_kdb_self_join(small_clusters, JoinSpec(epsilon=0.1))
        off_spec = JoinSpec(epsilon=0.1, adjacency_pruning=False)
        off = epsilon_kdb_self_join(small_clusters, off_spec)
        assert_same_pairs(off.pairs, on.pairs, "pruning off")
        # ...but pruning-off does strictly more traversal work.
        assert off.stats.node_pairs_visited >= on.stats.node_pairs_visited

    def test_custom_split_order_same_result(self, small_uniform):
        base = epsilon_kdb_self_join(small_uniform, JoinSpec(epsilon=0.2))
        spec = JoinSpec(epsilon=0.2, split_order=list(range(7, -1, -1)))
        reordered = epsilon_kdb_self_join(small_uniform, spec)
        assert_same_pairs(reordered.pairs, base.pairs, "split order")

    def test_custom_sort_dim_same_result(self, small_uniform):
        base = epsilon_kdb_self_join(small_uniform, JoinSpec(epsilon=0.2))
        result = epsilon_kdb_self_join(
            small_uniform, JoinSpec(epsilon=0.2, sort_dim=0)
        )
        assert_same_pairs(result.pairs, base.pairs, "sort dim")

    def test_counter_sink_matches_collector(self, small_uniform):
        spec = JoinSpec(epsilon=0.3)
        collected = epsilon_kdb_self_join(small_uniform, spec)
        counter = PairCounter()
        counted = epsilon_kdb_self_join(small_uniform, spec, sink=counter)
        assert counter.count == len(collected.pairs)
        assert counted.stats.pairs_emitted == counter.count

    def test_prebuilt_tree_reused(self, small_uniform):
        spec = JoinSpec(epsilon=0.25)
        tree = EpsilonKdbTree.build(small_uniform, spec)
        direct = epsilon_kdb_self_join(small_uniform, spec)
        reused = epsilon_kdb_self_join(small_uniform, spec, tree=tree)
        assert_same_pairs(reused.pairs, direct.pairs, "prebuilt tree")

    def test_tree_reused_for_smaller_epsilon(self, small_clusters):
        """A tree built at a coarse epsilon answers every finer join."""
        coarse = JoinSpec(epsilon=0.2, leaf_size=32)
        tree = EpsilonKdbTree.build(small_clusters, coarse)
        for eps in (0.15, 0.08, 0.02):
            fine = JoinSpec(epsilon=eps, leaf_size=32)
            expected = oracle_self_pairs(small_clusters, fine)
            result = epsilon_kdb_self_join(small_clusters, fine, tree=tree)
            assert_same_pairs(result.pairs, expected, f"reuse at eps={eps}")

    def test_tree_reuse_for_larger_epsilon_rejected(self, small_clusters):
        tree = EpsilonKdbTree.build(small_clusters, JoinSpec(epsilon=0.1))
        with pytest.raises(InvalidParameterError):
            epsilon_kdb_self_join(
                small_clusters, JoinSpec(epsilon=0.3), tree=tree
            )

    def test_incrementally_built_tree_joins_correctly(self, small_clusters):
        spec = JoinSpec(epsilon=0.1, leaf_size=32)
        tree = EpsilonKdbTree.empty(small_clusters, spec)
        for index in range(len(small_clusters)):
            tree.insert(index)
        expected = oracle_self_pairs(small_clusters, spec)
        result = epsilon_kdb_self_join(small_clusters, spec, tree=tree)
        assert_same_pairs(result.pairs, expected, "incremental tree")


class TestStatistics:
    def test_distance_computations_bounded_by_all_pairs(self, small_uniform):
        n = len(small_uniform)
        result = epsilon_kdb_self_join(small_uniform, JoinSpec(epsilon=0.1))
        assert result.stats.distance_computations <= n * (n - 1) // 2

    def test_pruning_reduces_candidates_on_clusters(self, small_clusters):
        n = len(small_clusters)
        result = epsilon_kdb_self_join(
            small_clusters, JoinSpec(epsilon=0.05, leaf_size=32)
        )
        # Clustered data at small epsilon must prune the vast majority.
        assert result.stats.distance_computations < 0.2 * n * (n - 1) / 2

    def test_timing_fields_populated(self, small_uniform):
        result = epsilon_kdb_self_join(small_uniform, JoinSpec(epsilon=0.2))
        assert result.build_seconds >= 0
        assert result.join_seconds >= 0
        assert result.total_seconds == pytest.approx(
            result.build_seconds + result.join_seconds
        )
