"""Crash-consistent persistence: snapshots, WAL, and recovery.

Three layers of coverage:

* unit tests of the on-disk formats — frame/record codecs, scan
  tolerance for torn and bit-flipped suffixes, snapshot header/array
  checksums, generation listing and pruning;
* end-to-end session tests — persist, close, :meth:`IncrementalJoin.open`,
  and the corruption matrix: for every injected fault kind the reopened
  session's accumulated pair set must be byte-identical to a
  never-crashed oracle's;
* a hypothesis state machine that interleaves updates with crashes
  (torn appends, publish crashes, abrupt kills) and re-opens, checking
  the oracle property after arbitrary histories.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import zlib
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from _oracles import assert_same_pairs, oracle_self_pairs
from repro import JoinSpec, similarity_join
from repro.core.incremental import IncrementalJoin
from repro.core.resilience import FaultPlan
from repro.errors import (
    CorruptSnapshotError,
    InvalidParameterError,
    SessionCrashError,
    StorageError,
)
from repro.metrics import Metric
from repro.obs import trace
from repro.storage.snapshot import (
    encode_snapshot,
    list_snapshots,
    load_snapshot,
    prune_snapshots,
    snapshot_filename,
    write_snapshot,
)
from repro.storage.wal import (
    OP_DELETE,
    OP_INSERT,
    WAL_FILENAME,
    WriteAheadLog,
    decode_record,
    encode_delete,
    encode_insert,
    scan_wal,
)

EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def oracle_id_pairs(mirror: dict, spec: JoinSpec) -> np.ndarray:
    """Brute-force join over a mirror {id: point}, mapped back to ids."""
    ids = np.array(sorted(mirror), dtype=np.int64)
    if len(ids) < 2:
        return EMPTY_PAIRS.copy()
    points = np.array([mirror[int(i)] for i in ids])
    local = oracle_self_pairs(points, spec)
    if not len(local):
        return EMPTY_PAIRS.copy()
    pairs = ids[local]
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


# ----------------------------------------------------------------------
# WAL format
# ----------------------------------------------------------------------
class TestWalFormat:
    def test_record_codec_roundtrip(self):
        points = np.arange(12.0).reshape(4, 3)
        rec = decode_record(encode_insert(7, points))
        assert (rec.seq, rec.op) == (7, OP_INSERT)
        assert np.array_equal(rec.points, points)
        ids = np.array([3, 1, 99], dtype=np.int64)
        rec = decode_record(encode_delete(8, ids))
        assert (rec.seq, rec.op) == (8, OP_DELETE)
        assert np.array_equal(rec.ids, ids)

    def test_decode_rejects_garbage(self):
        with pytest.raises(StorageError):
            decode_record(b"\x00")
        bad_op = encode_insert(1, np.zeros((1, 2)))[:8] + b"\x77" + b"\x00" * 16
        with pytest.raises(StorageError):
            decode_record(bad_op)

    def test_scan_roundtrip(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        wal.append_insert(1, np.ones((2, 2)))
        wal.append_delete(2, np.array([0], dtype=np.int64))
        wal.close()
        records, valid_bytes, discarded = scan_wal(path)
        assert [r.seq for r in records] == [1, 2]
        assert discarded == 0
        assert valid_bytes == os.path.getsize(path)

    def test_scan_missing_file_is_empty(self, tmp_path):
        records, _, discarded = scan_wal(str(tmp_path / "nope.ekdb"))
        assert records == [] and discarded == 0

    def test_torn_suffix_is_discarded(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        wal.append_insert(1, np.ones((2, 2)))
        prefix = os.path.getsize(path)
        wal.append_insert(2, np.ones((2, 2)))
        wal.close()
        with open(path, "r+b") as handle:
            handle.truncate(prefix + 5)  # tear record 2 mid-frame
        records, valid_bytes, discarded = scan_wal(path)
        assert [r.seq for r in records] == [1]
        assert valid_bytes == prefix
        assert discarded == 1

    def test_bit_flip_is_discarded(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        wal.append_insert(1, np.ones((2, 2)))
        prefix = os.path.getsize(path)
        wal.append_insert(2, np.full((2, 2), 3.0))
        wal.append_insert(3, np.full((2, 2), 4.0))
        wal.close()
        with open(path, "r+b") as handle:
            handle.seek(prefix + 12)
            byte = handle.read(1)
            handle.seek(prefix + 12)
            handle.write(bytes([byte[0] ^ 0x01]))
        records, valid_bytes, discarded = scan_wal(path)
        # record 2 fails its CRC; record 3 sits after damage -> untrusted
        assert [r.seq for r in records] == [1]
        assert valid_bytes == prefix
        assert discarded == 1

    def test_damaged_header_reads_empty(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        wal.append_insert(1, np.ones((1, 1)))
        wal.close()
        with open(path, "r+b") as handle:
            handle.write(b"NOTAWAL!")
        records, _, discarded = scan_wal(path)
        assert records == [] and discarded == 1

    def test_reset_truncates_to_header(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        wal.append_insert(1, np.ones((4, 4)))
        wal.reset()
        wal.close()
        records, _, discarded = scan_wal(path)
        assert records == [] and discarded == 0

    def test_invalid_sync_mode_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="sync_mode"):
            WriteAheadLog(str(tmp_path / "w"), sync_mode="sometimes")


# ----------------------------------------------------------------------
# snapshot format
# ----------------------------------------------------------------------
def _sample_state():
    meta = {"snap_seq": 3, "wal_seq": 17, "note": "unit"}
    arrays = {
        "ids": np.array([5, 9, 12], dtype=np.int64),
        "alive": np.array([True, False, True]),
        "points": np.arange(12.0).reshape(3, 4),
        "empty": np.empty((0, 4), dtype=np.float64),
    }
    return meta, arrays


class TestSnapshotFormat:
    def test_encode_load_roundtrip(self, tmp_path):
        meta, arrays = _sample_state()
        path, nbytes = write_snapshot(str(tmp_path), 3, meta, arrays)
        assert os.path.getsize(path) == nbytes
        loaded_meta, loaded = load_snapshot(path)
        assert loaded_meta["wal_seq"] == 17
        for name, expected in arrays.items():
            got = loaded[name]
            assert got.dtype == expected.dtype, name
            assert got.shape == expected.shape, name
            assert np.array_equal(got, expected), name

    def test_no_tmp_file_left_behind(self, tmp_path):
        meta, arrays = _sample_state()
        write_snapshot(str(tmp_path), 0, meta, arrays)
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]

    def test_listing_orders_and_prunes_generations(self, tmp_path):
        meta, arrays = _sample_state()
        for seq in (2, 0, 1):
            write_snapshot(str(tmp_path), seq, meta, arrays)
        assert [seq for seq, _ in list_snapshots(str(tmp_path))] == [0, 1, 2]
        prune_snapshots(str(tmp_path), keep=2)
        assert [seq for seq, _ in list_snapshots(str(tmp_path))] == [1, 2]

    def test_truncation_detected(self, tmp_path):
        meta, arrays = _sample_state()
        path, nbytes = write_snapshot(str(tmp_path), 0, meta, arrays)
        with open(path, "r+b") as handle:
            handle.truncate(nbytes - 7)
        with pytest.raises(StorageError):
            load_snapshot(path)

    def test_array_bit_flip_detected(self, tmp_path):
        import struct

        meta, arrays = _sample_state()
        path, nbytes = write_snapshot(str(tmp_path), 0, meta, arrays)
        with open(path, "r+b") as handle:
            blob = handle.read()
            _, _, header_len, _ = struct.unpack_from("<8sIII", blob)
            header = json.loads(blob[20 : 20 + header_len].decode())
            entry = next(
                e for e in header["arrays"] if e["name"] == "points"
            )
            victim = entry["offset"] + entry["nbytes"] // 3
            handle.seek(victim)
            byte = handle.read(1)
            handle.seek(victim)
            handle.write(bytes([byte[0] ^ 0x04]))
        with pytest.raises(StorageError):
            load_snapshot(path)

    def test_bad_magic_detected(self, tmp_path):
        meta, arrays = _sample_state()
        path, _ = write_snapshot(str(tmp_path), 0, meta, arrays)
        with open(path, "r+b") as handle:
            handle.write(b"WRONGMAG")
        with pytest.raises(StorageError, match="magic"):
            load_snapshot(path)

    def test_header_crc_detected(self, tmp_path):
        meta, arrays = _sample_state()
        path, _ = write_snapshot(str(tmp_path), 0, meta, arrays)
        with open(path, "r+b") as handle:
            handle.seek(24)  # inside the JSON header
            handle.write(b"X")
        with pytest.raises(StorageError):
            load_snapshot(path)

    def test_payload_is_checksummed_bytes(self):
        meta, arrays = _sample_state()
        blob = encode_snapshot(meta, arrays)
        # flipping any array byte must change some recorded CRC
        assert zlib.crc32(blob) != zlib.crc32(
            blob[:-1] + bytes([blob[-1] ^ 1])
        )

    def test_filename_is_sortable(self):
        assert snapshot_filename(7) == "snapshot-000007.ekdb"
        assert snapshot_filename(10) > snapshot_filename(9)


# ----------------------------------------------------------------------
# session round trips
# ----------------------------------------------------------------------
def _session_dir(tmp_path):
    return str(tmp_path / "session")


class TestSessionPersistence:
    def test_fresh_session_publishes_empty_snapshot(self, tmp_path):
        path = _session_dir(tmp_path)
        spec = JoinSpec(epsilon=0.3, persist_path=path)
        session = IncrementalJoin(spec)
        session.close()
        assert [seq for seq, _ in list_snapshots(path)] == [0]
        assert os.path.exists(os.path.join(path, WAL_FILENAME))

    def test_roundtrip_restores_exact_state(self, tmp_path):
        path = _session_dir(tmp_path)
        rng = np.random.default_rng(0)
        spec = JoinSpec(epsilon=0.3, persist_path=path, delta_threshold=50)
        session = IncrementalJoin(spec)
        for _ in range(4):
            session.insert(rng.random((30, 4)))
        session.delete(np.array([2, 30, 61]))
        expected = session.current_pairs()
        n_live, seq = session.n_live, session.last_update_seq
        estimate = session.estimated_join_size
        session.close()

        reopened = IncrementalJoin.open(path)
        assert reopened.n_live == n_live
        assert reopened.last_update_seq == seq
        assert reopened.estimated_join_size == pytest.approx(estimate)
        assert_same_pairs(reopened.current_pairs(), expected, "reopen")
        # ids continue exactly where the first process stopped
        delta = reopened.insert(rng.random((3, 4)))
        assert delta.ids.tolist() == [120, 121, 122]
        reopened.close()

    def test_recovery_stats_populated(self, tmp_path):
        path = _session_dir(tmp_path)
        spec = JoinSpec(epsilon=0.3, persist_path=path, delta_threshold=10_000)
        session = IncrementalJoin(spec)
        session.insert(np.random.default_rng(1).random((20, 3)))
        session.close()
        reopened = IncrementalJoin.open(path)
        stats = reopened.stats.as_dict()
        assert stats["wal_records_replayed"] == 1
        assert stats["corrupt_frames_discarded"] == 0
        assert stats["snapshot_bytes"] > 0
        assert stats["recovery_seconds"] > 0
        reopened.close()

    def test_init_on_existing_session_dir_rejected(self, tmp_path):
        path = _session_dir(tmp_path)
        IncrementalJoin(JoinSpec(epsilon=0.3, persist_path=path)).close()
        with pytest.raises(InvalidParameterError, match="IncrementalJoin.open"):
            IncrementalJoin(JoinSpec(epsilon=0.3, persist_path=path))

    def test_open_empty_dir_requires_spec(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no persisted session"):
            IncrementalJoin.open(_session_dir(tmp_path))

    def test_spec_fingerprint_mismatch_rejected(self, tmp_path):
        path = _session_dir(tmp_path)
        IncrementalJoin(JoinSpec(epsilon=0.3, persist_path=path)).close()
        with pytest.raises(InvalidParameterError, match="fingerprint"):
            IncrementalJoin.open(path, spec=JoinSpec(epsilon=0.4))

    def test_runtime_fields_do_not_change_fingerprint(self):
        a = JoinSpec(epsilon=0.3)
        b = JoinSpec(epsilon=0.3, n_workers=7, persist_path="/x", sync_mode="off")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != JoinSpec(epsilon=0.31).fingerprint()

    def test_structural_roundtrip_weighted_metric(self):
        from repro.metrics import WeightedLpMetric

        spec = JoinSpec(
            epsilon=0.2, metric=WeightedLpMetric(2, [1.0, 0.5]), leaf_size=64
        )
        rebuilt = JoinSpec.from_structural_dict(spec.structural_dict())
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_custom_metric_rejected_up_front(self, tmp_path):
        class Odd(Metric):
            name = "odd"

            def distance(self, a, b):  # pragma: no cover - never called
                return 0.0

            def pairwise_within(self, a, b, eps):  # pragma: no cover
                return np.zeros((len(a), len(b)), dtype=bool)

        spec = JoinSpec(
            epsilon=0.2,
            metric=Odd(),
            persist_path=_session_dir(tmp_path),
        )
        with pytest.raises(InvalidParameterError, match="serialization"):
            IncrementalJoin(spec)

    @pytest.mark.parametrize("sync_mode", ["always", "batch", "off"])
    def test_sync_modes_all_roundtrip(self, tmp_path, sync_mode):
        path = str(tmp_path / sync_mode)
        spec = JoinSpec(
            epsilon=0.3, persist_path=path, sync_mode=sync_mode,
            delta_threshold=8,
        )
        session = IncrementalJoin(spec)
        rng = np.random.default_rng(2)
        for _ in range(3):
            session.insert(rng.random((6, 3)))
        expected = session.current_pairs()
        session.close()
        reopened = IncrementalJoin.open(path)
        assert_same_pairs(reopened.current_pairs(), expected, sync_mode)
        reopened.close()

    def test_invalid_sync_mode_rejected_by_spec(self):
        with pytest.raises(InvalidParameterError, match="sync_mode"):
            JoinSpec(epsilon=0.3, sync_mode="mostly")

    def test_context_manager_closes(self, tmp_path):
        path = _session_dir(tmp_path)
        with IncrementalJoin(JoinSpec(epsilon=0.3, persist_path=path)) as s:
            s.insert(np.zeros((1, 2)))
            wal = s._wal
        assert wal.closed

    def test_cold_open_performs_no_tree_build(self, tmp_path):
        """Acceptance: re-opening a persisted 50k-point index memmaps the
        tree back (no build spans anywhere in the trace) and answers the
        join byte-identically."""
        path = _session_dir(tmp_path)
        points = np.random.default_rng(3).random((50_000, 4))
        spec = JoinSpec(epsilon=0.01, persist_path=path, delta_threshold=100)
        session = IncrementalJoin(spec)
        session.insert(points)  # auto-compacts -> snapshot holds the tree
        expected = session.current_pairs()
        assert session.delta_size == 0, "precondition: state fully in base"
        session.close()

        tracer = trace.Tracer()
        with trace.activate(tracer):
            reopened = IncrementalJoin.open(path)
            got = reopened.current_pairs()
        names = {span.name for span in tracer.finished_spans()}
        assert not any("build" in name for name in names), names
        assert "recover" in names
        assert_same_pairs(got, expected, "cold open")
        reopened.close()


# ----------------------------------------------------------------------
# corruption-injected recovery matrix
# ----------------------------------------------------------------------
_RNG = np.random.default_rng(77)
_BATCHES = [_RNG.random((25, 3)) for _ in range(6)]
_DELETES = [np.array([4, 11], dtype=np.int64), np.array([30, 52], dtype=np.int64)]
_STREAM = [
    ("insert", _BATCHES[0]),
    ("insert", _BATCHES[1]),
    ("delete", _DELETES[0]),
    ("insert", _BATCHES[2]),
    ("insert", _BATCHES[3]),
    ("delete", _DELETES[1]),
    ("insert", _BATCHES[4]),
    ("insert", _BATCHES[5]),
]


def _drive(session) -> bool:
    """Apply the scripted stream; False if an injected crash cut it short."""
    for kind, payload in _STREAM:
        try:
            if kind == "insert":
                session.insert(payload)
            else:
                session.delete(payload)
        except SessionCrashError:
            return False
    return True


def _oracle_through(upto_seq: int):
    """A never-crashed session that applied the first ``upto_seq`` updates."""
    session = IncrementalJoin(JoinSpec(epsilon=0.25, delta_threshold=60))
    for seq, (kind, payload) in enumerate(_STREAM, start=1):
        if seq > upto_seq:
            break
        if kind == "insert":
            session.insert(payload)
        else:
            session.delete(payload)
    return session


_FAULTS = {
    "torn-wal-frame": lambda: FaultPlan().tear_wal_frame(4),
    "flipped-wal-payload": lambda: FaultPlan().flip_wal_bit(5),
    "truncated-snapshot": lambda: FaultPlan().truncate_snapshot(1),
    "flipped-snapshot": lambda: FaultPlan().flip_snapshot_bit(1),
    "crash-before-publish": lambda: FaultPlan().crash_before_snapshot_publish(1),
    "snapshot-loss-plus-torn-tail": lambda: FaultPlan()
    .flip_snapshot_bit(1)
    .tear_wal_frame(7),
}


class TestCorruptionRecovery:
    @pytest.mark.parametrize("kind", sorted(_FAULTS))
    def test_recovery_matches_never_crashed_oracle(self, tmp_path, kind):
        path = _session_dir(tmp_path)
        spec = JoinSpec(epsilon=0.25, persist_path=path, delta_threshold=60)
        session = IncrementalJoin(spec, fault_plan=_FAULTS[kind]())
        if _drive(session):
            session.close()
        recovered = IncrementalJoin.open(path)
        oracle = _oracle_through(recovered.last_update_seq)
        assert recovered.n_live == oracle.n_live, kind
        assert recovered._next_id == oracle._next_id, kind
        got, expected = recovered.current_pairs(), oracle.current_pairs()
        assert got.tobytes() == expected.tobytes(), kind
        # and the recovered session keeps working
        delta = recovered.insert(_RNG.random((5, 3)))
        assert len(delta.ids) == 5
        recovered.close()

    def test_torn_frame_counts_as_discarded(self, tmp_path):
        path = _session_dir(tmp_path)
        spec = JoinSpec(epsilon=0.25, persist_path=path, delta_threshold=10_000)
        session = IncrementalJoin(spec, fault_plan=FaultPlan().tear_wal_frame(2))
        assert not _drive(session)
        recovered = IncrementalJoin.open(path)
        assert recovered.last_update_seq == 1
        assert recovered.stats.corrupt_frames_discarded == 1
        recovered.close()

    def test_all_generations_damaged_raises_typed_error(self, tmp_path):
        path = _session_dir(tmp_path)
        spec = JoinSpec(epsilon=0.25, persist_path=path, delta_threshold=60)
        session = IncrementalJoin(spec)
        _drive(session)
        session.close()
        for seq, snap_path in list_snapshots(path):
            with open(snap_path, "r+b") as handle:
                handle.truncate(10)
        with pytest.raises(CorruptSnapshotError):
            IncrementalJoin.open(path)

    def test_fallback_to_older_generation(self, tmp_path):
        """Damaging only the newest snapshot falls back one generation;
        stale higher-seq WAL records are discarded, not misapplied."""
        path = _session_dir(tmp_path)
        spec = JoinSpec(epsilon=0.25, persist_path=path, delta_threshold=30)
        session = IncrementalJoin(spec)
        finished = _drive(session)
        assert finished
        session.close()
        snaps = list_snapshots(path)
        assert len(snaps) >= 2, "scenario needs at least two generations"
        newest_seq, newest_path = snaps[-1]
        with open(newest_path, "r+b") as handle:
            handle.truncate(16)
        recovered = IncrementalJoin.open(path)
        oracle = _oracle_through(recovered.last_update_seq)
        assert recovered.current_pairs().tobytes() == oracle.current_pairs().tobytes()
        assert recovered.stats.corrupt_frames_discarded >= 1
        recovered.close()


# ----------------------------------------------------------------------
# similarity_join facade
# ----------------------------------------------------------------------
class TestFacadePersistence:
    def test_persisted_run_matches_plain(self, tmp_path):
        rng = np.random.default_rng(5)
        points = rng.random((200, 4))
        updates = [("insert", rng.random((40, 4))), ("delete", [3, 7])]
        plain = similarity_join(
            points, epsilon=0.3, updates=updates, delta_threshold=80
        )
        persisted = similarity_join(
            points,
            epsilon=0.3,
            updates=updates,
            delta_threshold=80,
            persist_path=_session_dir(tmp_path),
        )
        assert np.array_equal(plain, persisted)

    def test_resume_returns_accumulated_pairs(self, tmp_path):
        rng = np.random.default_rng(6)
        points = rng.random((150, 4))
        path = _session_dir(tmp_path)
        first = similarity_join(
            points, epsilon=0.3, delta_threshold=60, persist_path=path
        )
        resumed = similarity_join(
            np.empty((0, 4)), epsilon=0.3, delta_threshold=60, persist_path=path
        )
        assert np.array_equal(first, resumed)

    def test_sync_mode_requires_persist_path(self):
        with pytest.raises(InvalidParameterError, match="persist_path"):
            similarity_join(np.zeros((2, 2)), epsilon=0.1, sync_mode="off")

    def test_persist_rejects_two_set(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="self-join"):
            similarity_join(
                np.zeros((2, 2)),
                np.ones((2, 2)),
                epsilon=0.1,
                persist_path=_session_dir(tmp_path),
            )


# ----------------------------------------------------------------------
# stateful crash/reopen machine
# ----------------------------------------------------------------------
_MACHINE_SPEC = JoinSpec(epsilon=0.15, delta_threshold=6)

_coord = st.sampled_from([round(0.1 * k, 1) for k in range(10)])
_batch = st.lists(
    st.tuples(_coord, _coord), min_size=1, max_size=4
).map(lambda rows: np.array(rows, dtype=np.float64))


class CrashRecoveryMachine(RuleBasedStateMachine):
    """Random update streams interleaved with injected crashes.

    The mirror tracks every *acknowledged* update (insert/delete calls
    that returned).  The durability contract under test: after any
    crash/reopen interleaving, the recovered session holds exactly the
    acknowledged state — same seq, same live set, same pair set as the
    brute-force oracle over the mirror.
    """

    def __init__(self):
        super().__init__()
        self._tmp = tempfile.mkdtemp(prefix="ekdb-crash-machine-")
        self.path = os.path.join(self._tmp, "session")
        self.plan = FaultPlan()
        self.session = IncrementalJoin.open(
            self.path, spec=_MACHINE_SPEC, fault_plan=self.plan
        )
        self.mirror: dict = {}
        self.applied_seq = 0

    def _record_insert(self, delta, points):
        for offset, point_id in enumerate(delta.ids):
            self.mirror[int(point_id)] = points[offset]
        self.applied_seq += 1

    def _reopen(self):
        self.session = IncrementalJoin.open(self.path, fault_plan=self.plan)
        assert self.session.last_update_seq == self.applied_seq

    @rule(batch=_batch)
    def insert(self, batch):
        self._record_insert(self.session.insert(batch), batch)

    @precondition(lambda self: len(self.mirror) > 0)
    @rule(data=st.data())
    def delete(self, data):
        live = sorted(self.mirror)
        subset = data.draw(
            st.lists(st.sampled_from(live), min_size=1, unique=True),
            label="ids",
        )
        self.session.delete(subset)
        for point_id in subset:
            del self.mirror[int(point_id)]
        self.applied_seq += 1

    @rule()
    def compact(self):
        self.session.compact()

    @rule(batch=_batch)
    def crash_during_insert(self, batch):
        """Tear the next WAL append mid-frame: the unacknowledged batch
        must vanish; everything acknowledged must survive."""
        self.plan.tear_wal_frame(self.session.last_update_seq + 1)
        with pytest.raises(SessionCrashError):
            self.session.insert(batch)
        self._reopen()

    @precondition(lambda self: self.session.delta_size > 0)
    @rule()
    def crash_during_publish(self):
        """Die after the snapshot tmp-write but before the atomic rename:
        the half-published generation must be invisible to recovery."""
        self.plan.crash_before_snapshot_publish(self.session._snapshot_seq + 1)
        with pytest.raises(SessionCrashError):
            self.session.compact()
        self._reopen()

    @rule()
    def kill_and_reopen(self):
        """Abandon the process state without a clean close."""
        self.session._wal._handle.close()
        self._reopen()

    @invariant()
    def live_state_matches_mirror(self):
        assert self.session.n_live == len(self.mirror)
        assert self.session.live_ids().tolist() == sorted(self.mirror)

    @rule()
    def pairs_match_oracle(self):
        assert_same_pairs(
            self.session.current_pairs(),
            oracle_id_pairs(self.mirror, _MACHINE_SPEC),
            f"crash machine @ seq {self.applied_seq}",
        )

    def teardown(self):
        try:
            self.session.close()
        finally:
            shutil.rmtree(self._tmp, ignore_errors=True)


CrashRecoveryMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=15, deadline=None
)

TestCrashRecoveryStateful = CrashRecoveryMachine.TestCase


# ----------------------------------------------------------------------
# stats JSON plumbing
# ----------------------------------------------------------------------
def test_recovery_counters_flow_through_as_dict(tmp_path):
    path = _session_dir(tmp_path)
    session = IncrementalJoin(
        JoinSpec(epsilon=0.3, persist_path=path, delta_threshold=5)
    )
    session.insert(np.random.default_rng(9).random((12, 3)))
    session.close()
    reopened = IncrementalJoin.open(path)
    blob = json.dumps(reopened.stats.as_dict())
    for key in (
        "wal_records_replayed",
        "snapshot_bytes",
        "recovery_seconds",
        "corrupt_frames_discarded",
    ):
        assert key in blob
    reopened.close()


# ----------------------------------------------------------------------
# snapshot retention (ISSUE 8)
# ----------------------------------------------------------------------
class TestKeepGenerations:
    def _fill(self, session, batches, rng):
        for _ in range(batches):
            session.insert(rng.random((25, 2)))

    def test_default_keeps_two_generations(self, tmp_path):
        path = _session_dir(tmp_path)
        rng = np.random.default_rng(50)
        spec = JoinSpec(epsilon=0.2, delta_threshold=20, persist_path=path)
        session = IncrementalJoin(spec)
        self._fill(session, 8, rng)
        session.close()
        assert len(list_snapshots(path)) == 2

    def test_spec_knob_widens_retention(self, tmp_path):
        path = _session_dir(tmp_path)
        rng = np.random.default_rng(51)
        spec = JoinSpec(
            epsilon=0.2,
            delta_threshold=20,
            persist_path=path,
            keep_generations=4,
        )
        session = IncrementalJoin(spec)
        self._fill(session, 8, rng)
        snaps = list_snapshots(path)
        assert len(snaps) == 4
        # Newest snapshot survives; retention prunes from the old end.
        assert snaps[-1][0] == session._snapshot_seq
        session.close()

    def test_open_override_is_a_runtime_knob(self, tmp_path):
        path = _session_dir(tmp_path)
        rng = np.random.default_rng(52)
        spec = JoinSpec(
            epsilon=0.2, delta_threshold=20, persist_path=path, keep_generations=3
        )
        session = IncrementalJoin(spec)
        self._fill(session, 8, rng)
        assert len(list_snapshots(path)) == 3
        expected = session.current_pairs()
        session.close()
        # Reopening with a different retention must succeed (runtime
        # knob, not part of the structural fingerprint) and take effect
        # at the next compactions.
        reopened = IncrementalJoin.open(path, keep_generations=1)
        assert np.array_equal(reopened.current_pairs(), expected)
        self._fill(reopened, 6, rng)
        assert len(list_snapshots(path)) == 1
        reopened.close()

    def test_facade_threads_keep_generations(self, tmp_path):
        path = _session_dir(tmp_path)
        rng = np.random.default_rng(53)
        points = rng.random((120, 3))
        updates = [("insert", rng.random((30, 3))) for _ in range(4)]
        similarity_join(
            points,
            epsilon=0.25,
            delta_threshold=30,
            persist_path=path,
            keep_generations=5,
        )
        similarity_join(
            np.empty((0, 3)),
            epsilon=0.25,
            delta_threshold=30,
            persist_path=path,
            updates=updates,
            keep_generations=5,
        )
        assert 2 < len(list_snapshots(path)) <= 5

    def test_keep_generations_requires_persist_path(self):
        with pytest.raises(InvalidParameterError, match="persist_path"):
            similarity_join(np.zeros((2, 2)), epsilon=0.1, keep_generations=3)

    def test_keep_generations_validation(self):
        with pytest.raises(InvalidParameterError, match="keep_generations"):
            JoinSpec(epsilon=0.1, keep_generations=0)

    def test_not_part_of_structural_fingerprint(self, tmp_path):
        a = JoinSpec(epsilon=0.2, keep_generations=2)
        b = JoinSpec(epsilon=0.2, keep_generations=7)
        assert a.fingerprint() == b.fingerprint()
