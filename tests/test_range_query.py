"""Tests for epsilon-kdB tree range queries (similarity search)."""

import numpy as np
import pytest

from repro import EpsilonKdbTree, JoinSpec
from repro.errors import InvalidParameterError


def linear_scan(points, query, eps, metric):
    diffs = np.abs(points - query)
    return np.flatnonzero(metric.within_gap(diffs, eps))


@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
def test_matches_linear_scan(metric, small_clusters):
    spec = JoinSpec(epsilon=0.15, metric=metric, leaf_size=32)
    tree = EpsilonKdbTree.build(small_clusters, spec)
    rng = np.random.default_rng(23)
    for _ in range(25):
        query = rng.random(small_clusters.shape[1])
        hits = tree.range_query(query)
        expected = linear_scan(small_clusters, query, 0.15, spec.metric)
        assert hits.tolist() == expected.tolist()


def test_smaller_radius_than_build_epsilon(small_clusters):
    spec = JoinSpec(epsilon=0.2, leaf_size=32)
    tree = EpsilonKdbTree.build(small_clusters, spec)
    rng = np.random.default_rng(24)
    for _ in range(10):
        query = rng.random(small_clusters.shape[1])
        hits = tree.range_query(query, eps=0.07)
        expected = linear_scan(small_clusters, query, 0.07, spec.metric)
        assert hits.tolist() == expected.tolist()


def test_larger_radius_rejected(small_uniform):
    tree = EpsilonKdbTree.build(small_uniform, JoinSpec(epsilon=0.1))
    with pytest.raises(InvalidParameterError):
        tree.range_query(np.zeros(small_uniform.shape[1]), eps=0.5)


def test_query_point_outside_domain(small_uniform):
    """Queries just outside the data bounding box must still be exact."""
    spec = JoinSpec(epsilon=0.3, leaf_size=32)
    tree = EpsilonKdbTree.build(small_uniform, spec)
    dims = small_uniform.shape[1]
    for query in (np.full(dims, -0.2), np.full(dims, 1.2)):
        hits = tree.range_query(query)
        expected = linear_scan(small_uniform, query, 0.3, spec.metric)
        assert hits.tolist() == expected.tolist()


def test_wrong_query_shape_rejected(small_uniform):
    tree = EpsilonKdbTree.build(small_uniform, JoinSpec(epsilon=0.1))
    with pytest.raises(InvalidParameterError):
        tree.range_query(np.zeros(3))


def test_query_on_incrementally_built_tree():
    rng = np.random.default_rng(25)
    points = rng.random((400, 5))
    spec = JoinSpec(epsilon=0.2, leaf_size=16)
    tree = EpsilonKdbTree.empty(points, spec)
    for index in range(len(points)):
        tree.insert(index)
    query = np.full(5, 0.5)
    hits = tree.range_query(query)
    expected = linear_scan(points, query, 0.2, spec.metric)
    assert hits.tolist() == expected.tolist()


def test_empty_tree_returns_nothing():
    # A backing array exists but nothing was inserted.
    tree = EpsilonKdbTree.empty(np.zeros((1, 4)), JoinSpec(epsilon=0.1))
    hits = tree.range_query(np.zeros(4))
    assert hits.tolist() == []


# ----------------------------------------------------------------------
# flat-tree batched queries
# ----------------------------------------------------------------------


def _flat_tree(points, spec):
    from repro import FlatEpsilonKdbTree

    return FlatEpsilonKdbTree.build(points, spec)


@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
def test_batch_matches_sequential_pointer_queries(metric, small_clusters):
    """Q batched flat-tree queries == Q sequential pointer queries, bytewise."""
    spec = JoinSpec(epsilon=0.15, metric=metric, leaf_size=32)
    pointer = EpsilonKdbTree.build(small_clusters, spec)
    flat = _flat_tree(small_clusters, spec)
    rng = np.random.default_rng(31)
    queries = rng.random((40, small_clusters.shape[1]))
    batched = flat.batch_range_query(queries)
    assert len(batched) == len(queries)
    for query, hits in zip(queries, batched):
        expected = pointer.range_query(query)
        assert hits.dtype == np.int64
        assert hits.tobytes() == expected.tobytes()


def test_batch_narrower_radius_and_out_of_box(small_uniform):
    spec = JoinSpec(epsilon=0.25, leaf_size=16)
    pointer = EpsilonKdbTree.build(small_uniform, spec)
    flat = _flat_tree(small_uniform, spec)
    rng = np.random.default_rng(32)
    # Mix in-box queries with ones outside the data bounding box.
    queries = rng.random((30, small_uniform.shape[1])) * 1.6 - 0.3
    for eps in (0.25, 0.1):
        batched = flat.batch_range_query(queries, eps=eps)
        for query, hits in zip(queries, batched):
            expected = pointer.range_query(query, eps=eps)
            assert hits.tobytes() == expected.tobytes()


def test_batch_single_query_delegation(small_uniform):
    spec = JoinSpec(epsilon=0.2, leaf_size=16)
    flat = _flat_tree(small_uniform, spec)
    rng = np.random.default_rng(33)
    query = rng.random(small_uniform.shape[1])
    single = flat.range_query(query)
    batched = flat.batch_range_query(query[np.newaxis, :])[0]
    assert single.tobytes() == batched.tobytes()


def test_batch_rejects_radius_above_build_epsilon(small_uniform):
    flat = _flat_tree(small_uniform, JoinSpec(epsilon=0.1))
    queries = np.zeros((2, small_uniform.shape[1]))
    with pytest.raises(InvalidParameterError):
        flat.batch_range_query(queries, eps=0.5)
    with pytest.raises(InvalidParameterError):
        flat.range_query(queries[0], eps=0.5)


def test_batch_empty_inputs(small_uniform):
    flat = _flat_tree(small_uniform, JoinSpec(epsilon=0.1))
    assert flat.batch_range_query(np.empty((0, small_uniform.shape[1]))) == []
    with pytest.raises(InvalidParameterError):
        flat.range_query(np.zeros(small_uniform.shape[1] + 1))


def test_session_range_query_matches_brute_force():
    """IncrementalJoin range queries see base, delta and tombstones."""
    from repro import IncrementalJoin

    rng = np.random.default_rng(34)
    spec = JoinSpec(epsilon=0.15, leaf_size=8, delta_threshold=50)
    session = IncrementalJoin(spec)
    deltas = [session.insert(rng.random((40, 3))) for _ in range(5)]
    session.delete(deltas[0].ids[:15])
    live_points = session.live_points()
    live_ids = session.live_ids()
    queries = rng.random((30, 3)) * 1.4 - 0.2
    for eps in (0.15, 0.08):
        batched = session.batch_range_query(queries, eps=eps)
        for query, hits in zip(queries, batched):
            keep = spec.metric.within_gap(np.abs(live_points - query), eps)
            expected = np.sort(live_ids[keep]).astype(np.int64)
            assert hits.tobytes() == expected.tobytes()
            assert session.range_query(query, eps=eps).tobytes() == expected.tobytes()


def test_session_range_query_validation():
    from repro import IncrementalJoin

    session = IncrementalJoin(JoinSpec(epsilon=0.1))
    # Empty session answers empty, whatever the dimensionality asked.
    assert session.range_query(np.zeros(7)).tolist() == []
    session.insert(np.random.default_rng(35).random((10, 2)))
    with pytest.raises(InvalidParameterError):
        session.range_query(np.zeros(2), eps=0.4)
    with pytest.raises(InvalidParameterError):
        session.range_query(np.zeros(3))
