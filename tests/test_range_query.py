"""Tests for epsilon-kdB tree range queries (similarity search)."""

import numpy as np
import pytest

from repro import EpsilonKdbTree, JoinSpec
from repro.errors import InvalidParameterError


def linear_scan(points, query, eps, metric):
    diffs = np.abs(points - query)
    return np.flatnonzero(metric.within_gap(diffs, eps))


@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
def test_matches_linear_scan(metric, small_clusters):
    spec = JoinSpec(epsilon=0.15, metric=metric, leaf_size=32)
    tree = EpsilonKdbTree.build(small_clusters, spec)
    rng = np.random.default_rng(23)
    for _ in range(25):
        query = rng.random(small_clusters.shape[1])
        hits = tree.range_query(query)
        expected = linear_scan(small_clusters, query, 0.15, spec.metric)
        assert hits.tolist() == expected.tolist()


def test_smaller_radius_than_build_epsilon(small_clusters):
    spec = JoinSpec(epsilon=0.2, leaf_size=32)
    tree = EpsilonKdbTree.build(small_clusters, spec)
    rng = np.random.default_rng(24)
    for _ in range(10):
        query = rng.random(small_clusters.shape[1])
        hits = tree.range_query(query, eps=0.07)
        expected = linear_scan(small_clusters, query, 0.07, spec.metric)
        assert hits.tolist() == expected.tolist()


def test_larger_radius_rejected(small_uniform):
    tree = EpsilonKdbTree.build(small_uniform, JoinSpec(epsilon=0.1))
    with pytest.raises(InvalidParameterError):
        tree.range_query(np.zeros(small_uniform.shape[1]), eps=0.5)


def test_query_point_outside_domain(small_uniform):
    """Queries just outside the data bounding box must still be exact."""
    spec = JoinSpec(epsilon=0.3, leaf_size=32)
    tree = EpsilonKdbTree.build(small_uniform, spec)
    dims = small_uniform.shape[1]
    for query in (np.full(dims, -0.2), np.full(dims, 1.2)):
        hits = tree.range_query(query)
        expected = linear_scan(small_uniform, query, 0.3, spec.metric)
        assert hits.tolist() == expected.tolist()


def test_wrong_query_shape_rejected(small_uniform):
    tree = EpsilonKdbTree.build(small_uniform, JoinSpec(epsilon=0.1))
    with pytest.raises(InvalidParameterError):
        tree.range_query(np.zeros(3))


def test_query_on_incrementally_built_tree():
    rng = np.random.default_rng(25)
    points = rng.random((400, 5))
    spec = JoinSpec(epsilon=0.2, leaf_size=16)
    tree = EpsilonKdbTree.empty(points, spec)
    for index in range(len(points)):
        tree.insert(index)
    query = np.full(5, 0.5)
    hits = tree.range_query(query)
    expected = linear_scan(points, query, 0.2, spec.metric)
    assert hits.tolist() == expected.tolist()


def test_empty_tree_returns_nothing():
    # A backing array exists but nothing was inserted.
    tree = EpsilonKdbTree.empty(np.zeros((1, 4)), JoinSpec(epsilon=0.1))
    hits = tree.range_query(np.zeros(4))
    assert hits.tolist() == []
