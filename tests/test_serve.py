"""Tests for the async serving layer (ISSUE 8).

The headline property: a session driven through the server — attach,
inserts, deletes, range queries, mini-joins, snapshot re-attach after a
restart — answers byte-identically to the same operations run directly
against an :class:`IncrementalJoin`.  Coalescing and admission control
change latency and refusals, never results.

No pytest-asyncio here: each test drives its own event loop with
``asyncio.run`` so the suite runs on the stock toolchain.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import IncrementalJoin, JoinSpec
from repro.errors import AdmissionError, InvalidParameterError
from repro.serve import (
    JoinServer,
    ProtocolError,
    QueryCoalescer,
    RemoteError,
    ServeClient,
    SessionManager,
)
from repro.serve import protocol


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def _started_server(**kwargs) -> JoinServer:
    server = JoinServer("127.0.0.1", 0, **kwargs)
    await server.start()
    return server


# ----------------------------------------------------------------------
# protocol codec
# ----------------------------------------------------------------------
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


class TestProtocol:
    @given(st.dictionaries(st.text(max_size=10), _json_values, max_size=8))
    def test_codec_roundtrip(self, message):
        frame = protocol.encode_frame(message)
        assert protocol.decode_frame(frame[4:]) == message

    def test_roundtrip_through_streams(self):
        async def scenario():
            server_reader = asyncio.StreamReader()
            messages = [
                {"op": "ping", "id": 1},
                {"op": "insert", "points": [[0.25, 0.5], [1.0, 2.0]]},
                {"op": "range_query", "point": [0.1], "eps": 0.05},
            ]
            for message in messages:
                server_reader.feed_data(protocol.encode_frame(message))
            server_reader.feed_eof()
            decoded = []
            while True:
                frame = await protocol.read_frame(server_reader)
                if frame is None:
                    break
                decoded.append(frame)
            assert decoded == messages

        run(scenario())

    def test_truncated_header_and_body_raise(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="mid-header"):
                await protocol.read_frame(reader)
            reader = asyncio.StreamReader()
            reader.feed_data(protocol.encode_frame({"op": "ping"})[:-2])
            reader.feed_eof()
            with pytest.raises(ProtocolError, match="mid-frame"):
                await protocol.read_frame(reader)

        run(scenario())

    def test_oversized_frame_refused(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError, match="limit"):
                await protocol.read_frame(reader)

        run(scenario())

    def test_non_object_and_non_json_bodies_refused(self):
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.decode_frame(b"\x80\x81")
        with pytest.raises(ProtocolError, match="object"):
            protocol.decode_frame(b"[1, 2]")

    def test_decode_points_and_ids_shapes(self):
        points = protocol.decode_points([[1, 2], [3, 4]])
        assert points.dtype == np.float64 and points.shape == (2, 2)
        assert protocol.decode_points([]).shape == (0, 0)
        with pytest.raises(ProtocolError):
            protocol.decode_points([[1], [2, 3]])
        with pytest.raises(ProtocolError):
            protocol.decode_ids([[1, 2]])


# ----------------------------------------------------------------------
# server round-trips vs direct engine calls
# ----------------------------------------------------------------------
class TestServerEquivalence:
    def test_multi_tenant_clients_match_direct_sessions(self):
        """Two tenants, two clients, interleaved: every answer must be
        byte-identical to a direct IncrementalJoin mirror."""

        async def scenario():
            rng = np.random.default_rng(60)
            server = await _started_server(coalesce_window=0.002)
            mirrors = {
                "alpha": IncrementalJoin(JoinSpec(epsilon=0.2, leaf_size=8)),
                "beta": IncrementalJoin(JoinSpec(epsilon=0.12, leaf_size=16)),
            }
            try:
                c1 = await ServeClient.connect("127.0.0.1", server.port)
                c2 = await ServeClient.connect("127.0.0.1", server.port)
                await c1.attach("alpha", epsilon=0.2, leaf_size=8)
                await c2.attach("beta", epsilon=0.12, leaf_size=16)
                for _ in range(3):
                    pa, pb = rng.random((30, 3)), rng.random((40, 2))
                    ids_a, ids_b = await asyncio.gather(
                        c1.insert("alpha", pa), c2.insert("beta", pb)
                    )
                    assert ids_a.tobytes() == mirrors["alpha"].insert(pa).ids.tobytes()
                    assert ids_b.tobytes() == mirrors["beta"].insert(pb).ids.tobytes()
                await c1.delete("alpha", ids_a[:10].tolist())
                mirrors["alpha"].delete(ids_a[:10])
                # Concurrent queries from both clients against both tenants.
                qa, qb = rng.random((12, 3)), rng.random((12, 2))
                answers = await asyncio.gather(
                    *[c1.range_query("alpha", q) for q in qa],
                    *[c2.range_query("beta", q) for q in qb],
                )
                for q, got in zip(qa, answers[:12]):
                    assert got.tobytes() == mirrors["alpha"].range_query(q).tobytes()
                for q, got in zip(qb, answers[12:]):
                    assert got.tobytes() == mirrors["beta"].range_query(q).tobytes()
                # Mini-join equivalence against the brute-force oracle.
                probes = rng.random((5, 3))
                remote = await c1.mini_join("alpha", probes)
                mirror = mirrors["alpha"]
                live, ids = mirror.live_points(), mirror.live_ids()
                expected = []
                for i, probe in enumerate(probes):
                    keep = mirror.spec.metric.within_gap(
                        np.abs(live - probe), 0.2
                    )
                    expected.extend([i, int(j)] for j in np.sort(ids[keep]))
                assert remote.tolist() == expected
                # current_pairs round-trip.
                pairs = await c1.pairs("alpha")
                assert pairs.tobytes() == mirror.current_pairs().tobytes()
                await c1.close()
                await c2.close()
            finally:
                await server.stop()

        run(scenario())

    def test_snapshot_reattach_after_restart(self, tmp_path):
        """Stop the server, start a fresh one, re-attach from disk: the
        recovered tenant answers byte-identically."""

        async def scenario():
            rng = np.random.default_rng(61)
            path = str(tmp_path / "tenant")
            queries = rng.random((8, 2))
            server = await _started_server()
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.attach(
                    "disk", epsilon=0.25, path=path, delta_threshold=30
                )
                ids = await client.insert("disk", rng.random((70, 2)))
                await client.delete("disk", ids[:20].tolist())
                before_pairs = await client.pairs("disk")
                before_queries = [
                    await client.range_query("disk", q) for q in queries
                ]
                await client.close()
            finally:
                await server.stop()
            server = await _started_server()
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                info = await client.attach("disk", path=path)
                assert info["n_live"] == 50
                after_pairs = await client.pairs("disk")
                assert after_pairs.tobytes() == before_pairs.tobytes()
                for q, before in zip(queries, before_queries):
                    after = await client.range_query("disk", q)
                    assert after.tobytes() == before.tobytes()
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_unknown_tenant_and_bad_requests(self):
        async def scenario():
            server = await _started_server()
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                with pytest.raises(RemoteError, match="unknown tenant"):
                    await client.range_query("ghost", np.zeros(2))
                with pytest.raises(ProtocolError, match="unknown op"):
                    await client.request("frobnicate")
                with pytest.raises(ProtocolError, match="epsilon"):
                    await client.attach("half", leaf_size=4)
                # A failed request must not poison the connection.
                assert (await client.ping())["pong"] is True
                await client.close()
            finally:
                await server.stop()

        run(scenario())


# ----------------------------------------------------------------------
# coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_window_equivalence_and_batching(self):
        """Coalesced answers equal per-request answers, and concurrent
        queries actually share one batched traversal."""

        async def scenario():
            rng = np.random.default_rng(62)
            points = rng.random((150, 3))
            queries = rng.random((20, 3))
            mirror = IncrementalJoin(JoinSpec(epsilon=0.18))
            mirror.insert(points)
            expected = [mirror.range_query(q).tobytes() for q in queries]
            for window in (0.0, 0.005):
                server = await _started_server(coalesce_window=window)
                try:
                    client = await ServeClient.connect("127.0.0.1", server.port)
                    await client.attach("t", epsilon=0.18)
                    await client.insert("t", points)
                    answers = await asyncio.gather(
                        *[client.range_query("t", q) for q in queries]
                    )
                    assert [a.tobytes() for a in answers] == expected
                    width = server.metrics.histogram("serve.coalesce_width")
                    if window > 0:
                        # 20 concurrent queries, far fewer traversals.
                        assert width.count < 20
                        assert width.percentile(100) > 1
                    else:
                        assert width.percentile(100) == 1
                    await client.close()
                finally:
                    await server.stop()

        run(scenario())

    def test_coalescer_propagates_engine_errors(self):
        async def scenario():
            manager = SessionManager()
            session = manager.attach("t", spec=JoinSpec(epsilon=0.1))
            session.insert(np.random.default_rng(63).random((10, 2)))
            coalescer = QueryCoalescer(window_seconds=0.002)
            good = coalescer.submit(session, np.zeros(2))
            bad = coalescer.submit(session, np.zeros(2), eps=5.0)
            results = await asyncio.gather(good, bad, return_exceptions=True)
            # Radii live in separate batches: the bad one fails alone.
            assert isinstance(results[0], np.ndarray)
            assert isinstance(results[1], InvalidParameterError)
            manager.close_all()

        run(scenario())

    def test_flush_all_resolves_open_windows(self):
        async def scenario():
            manager = SessionManager()
            session = manager.attach("t", spec=JoinSpec(epsilon=0.1))
            session.insert(np.full((3, 2), 0.5))
            coalescer = QueryCoalescer(window_seconds=30.0)  # would block
            pending = asyncio.ensure_future(
                coalescer.submit(session, np.full(2, 0.5))
            )
            await asyncio.sleep(0.01)
            await coalescer.flush_all()
            hits = await asyncio.wait_for(pending, timeout=1)
            assert hits.tolist() == [0, 1, 2]
            manager.close_all()

        run(scenario())


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestServeAdmission:
    def test_size_budget_sheds_queries(self):
        async def scenario():
            rng = np.random.default_rng(64)
            server = await _started_server(max_predicted_pairs=1.0)
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.attach("t", epsilon=0.3)
                # A dense clump makes the sketch predict far more than
                # one pair per probe.
                await client.insert("t", np.full((40, 2), 0.5))
                with pytest.raises(AdmissionError, match="budget"):
                    await client.range_query("t", np.full(2, 0.5))
                with pytest.raises(AdmissionError):
                    await client.mini_join("t", rng.random((10, 2)))
                assert server.metrics.counter("serve.shed").value >= 2
                # Inserts and stats still flow.
                await client.insert("t", rng.random((5, 2)))
                stats = await client.stats()
                assert stats["server"]["serve.shed"]["value"] >= 2
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_queue_overflow_sheds(self):
        async def scenario():
            server = await _started_server(max_inflight=1, max_pending=1)
            manager_session = server.manager.attach(
                "t", spec=JoinSpec(epsilon=0.1)
            )
            manager_session.insert(np.random.default_rng(65).random((20, 2)))
            results = []

            async def occupy():
                async with server.admission.slot():
                    await asyncio.sleep(0.05)

            async def late():
                await asyncio.sleep(0.01)
                try:
                    async with server.admission.slot():
                        results.append("ran")
                except AdmissionError:
                    results.append("shed")

            try:
                await asyncio.gather(occupy(), late(), late())
                assert sorted(results) == ["ran", "shed"]
                assert server.metrics.counter("serve.shed").value == 1
                assert server.metrics.counter("serve.queued").value >= 1
            finally:
                await server.stop()

        run(scenario())

    def test_engine_admission_error_travels_the_wire(self):
        async def scenario():
            server = await _started_server()
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.attach("t", epsilon=0.2, admission_threshold=10.0)
                with pytest.raises(AdmissionError, match="admission threshold"):
                    await client.insert("t", np.full((30, 2), 0.5))
                stats = await client.stats("t")
                assert stats["tenant"]["stats"]["batches_rejected"] == 1
                assert stats["tenant"]["n_live"] == 0
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_deadline_expires(self):
        async def scenario():
            server = await _started_server(coalesce_window=0.5)
            try:
                client = await ServeClient.connect("127.0.0.1", server.port)
                await client.attach("t", epsilon=0.1)
                await client.insert("t", np.zeros((3, 2)))
                # The coalescing window (500ms) exceeds the deadline (20ms).
                with pytest.raises(RemoteError, match="deadline"):
                    await client.range_query("t", np.zeros(2), deadline_ms=20)
                assert (
                    server.metrics.counter("serve.deadline_exceeded").value == 1
                )
                await client.close()
            finally:
                await server.stop()

        run(scenario())


# ----------------------------------------------------------------------
# shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_clean_shutdown_answers_inflight_requests(self):
        """Queries in an open coalescing window when shutdown arrives
        still get real (correct) answers."""

        async def scenario():
            rng = np.random.default_rng(66)
            points = rng.random((80, 2))
            mirror = IncrementalJoin(JoinSpec(epsilon=0.2))
            mirror.insert(points)
            server = await _started_server(coalesce_window=0.2)
            serve_task = asyncio.ensure_future(server.serve_until_shutdown())
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.attach("t", epsilon=0.2)
            await client.insert("t", points)
            queries = rng.random((6, 2))
            inflight = [
                asyncio.ensure_future(client.range_query("t", q))
                for q in queries
            ]
            await asyncio.sleep(0.01)  # let them land in the window
            await client.shutdown()
            answers = await asyncio.gather(*inflight)
            for q, got in zip(queries, answers):
                assert got.tobytes() == mirror.range_query(q).tobytes()
            await asyncio.wait_for(serve_task, timeout=10)
            await client.close()

        run(scenario())

    def test_stop_is_idempotent_and_closes_sessions(self, tmp_path):
        async def scenario():
            path = str(tmp_path / "tenant")
            server = await _started_server()
            client = await ServeClient.connect("127.0.0.1", server.port)
            await client.attach("disk", epsilon=0.2, path=path)
            await client.insert(
                "disk", np.random.default_rng(67).random((10, 2))
            )
            await server.stop()
            await server.stop()  # second stop is a no-op
            assert len(server.manager) == 0
            await client.close()
            # The session directory is recoverable directly.
            session = IncrementalJoin.open(path)
            assert session.n_live == 10
            session.close()

        run(scenario())


# ----------------------------------------------------------------------
# session manager
# ----------------------------------------------------------------------
class TestSessionManager:
    def test_attach_idempotent_and_spec_checked(self):
        manager = SessionManager()
        first = manager.attach("t", spec=JoinSpec(epsilon=0.1))
        assert manager.attach("t") is first
        assert manager.attach("t", spec=JoinSpec(epsilon=0.1)) is first
        with pytest.raises(InvalidParameterError, match="different"):
            manager.attach("t", spec=JoinSpec(epsilon=0.5))
        with pytest.raises(InvalidParameterError, match="requires a spec"):
            manager.attach("other")
        manager.detach("t")
        with pytest.raises(InvalidParameterError, match="unknown tenant"):
            manager.get("t")
        manager.close_all()
