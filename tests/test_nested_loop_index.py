"""Tests for the index-nested-loop join."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_two_set_pairs
from repro import JoinSpec, PairCounter, similarity_join
from repro.baselines import index_nested_loop_join
from repro.datasets import gaussian_clusters
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def sides():
    probe = gaussian_clusters(250, 8, clusters=5, sigma=0.05, seed=91)
    base = gaussian_clusters(2500, 8, clusters=5, sigma=0.05, seed=91) + 0.005
    return probe, base


@pytest.mark.parametrize("index", ["epsilon-kdb", "rplus"])
@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
def test_matches_oracle(index, metric, sides):
    probe, base = sides
    spec = JoinSpec(epsilon=0.15, metric=metric)
    expected = oracle_two_set_pairs(probe, base, spec)
    result = index_nested_loop_join(probe, base, spec, index=index)
    assert_same_pairs(result.pairs, expected, f"inl {index}/{metric}")


def test_facade_registration(sides):
    probe, base = sides
    spec = JoinSpec(epsilon=0.15)
    expected = oracle_two_set_pairs(probe, base, spec)
    pairs = similarity_join(probe, base, epsilon=0.15,
                            algorithm="index-nested-loop")
    assert_same_pairs(pairs, expected, "inl facade")


def test_not_available_for_self_joins(sides):
    probe, _ = sides
    with pytest.raises(InvalidParameterError):
        similarity_join(probe, epsilon=0.15, algorithm="index-nested-loop")


def test_probe_points_outside_base_domain():
    base = np.random.default_rng(0).random((800, 4))
    probe = np.random.default_rng(1).random((50, 4)) + 0.95  # mostly outside
    spec = JoinSpec(epsilon=0.2)
    expected = oracle_two_set_pairs(probe, base, spec)
    result = index_nested_loop_join(probe, base, spec)
    assert_same_pairs(result.pairs, expected, "outside probes")


def test_counts_one_probe_per_r_point(sides):
    probe, base = sides
    sink = PairCounter()
    result = index_nested_loop_join(
        probe, base, JoinSpec(epsilon=0.15), sink=sink
    )
    assert result.stats.node_pairs_visited == len(probe)
    assert sink.count == result.stats.pairs_emitted


def test_empty_sides():
    spec = JoinSpec(epsilon=0.1)
    empty = np.empty((0, 3))
    other = np.zeros((5, 3))
    assert index_nested_loop_join(empty, other, spec).count == 0
    assert index_nested_loop_join(other, empty, spec).count == 0


def test_invalid_index_name(sides):
    probe, base = sides
    with pytest.raises(InvalidParameterError):
        index_nested_loop_join(probe, base, JoinSpec(epsilon=0.1),
                               index="btree")


def test_dim_mismatch():
    with pytest.raises(InvalidParameterError):
        index_nested_loop_join(
            np.zeros((2, 2)), np.zeros((2, 3)), JoinSpec(epsilon=0.1)
        )
