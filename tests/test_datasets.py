"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.datasets import (
    color_histograms,
    correlated_points,
    dft_features,
    gaussian_clusters,
    random_walk_series,
    timeseries_features,
    uniform_points,
)
from repro.errors import InvalidParameterError


class TestUniform:
    def test_shape_and_range(self):
        points = uniform_points(500, 7, seed=0)
        assert points.shape == (500, 7)
        assert (points >= 0).all() and (points < 1).all()

    def test_deterministic_by_seed(self):
        assert (uniform_points(50, 3, seed=9) == uniform_points(50, 3, seed=9)).all()
        assert not (
            uniform_points(50, 3, seed=9) == uniform_points(50, 3, seed=10)
        ).all()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            uniform_points(-1, 3)
        with pytest.raises(InvalidParameterError):
            uniform_points(10, 0)


class TestGaussianClusters:
    def test_shape_and_range(self):
        points = gaussian_clusters(400, 6, seed=1)
        assert points.shape == (400, 6)
        assert (points >= 0).all() and (points <= 1).all()

    def test_clusters_are_tighter_than_uniform(self):
        clustered = gaussian_clusters(800, 8, clusters=5, sigma=0.03, seed=2)
        uniform = uniform_points(800, 8, seed=2)
        # Nearest-neighbor distances should be much smaller for clusters.
        def mean_nn(points):
            total = 0.0
            for anchor in points[:100]:
                dists = np.linalg.norm(points - anchor, axis=1)
                total += np.partition(dists, 1)[1]
            return total / 100

        assert mean_nn(clustered) < 0.5 * mean_nn(uniform)

    def test_single_cluster(self):
        points = gaussian_clusters(200, 4, clusters=1, sigma=0.01, seed=3)
        assert np.linalg.norm(points.std(axis=0)) < 0.1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            gaussian_clusters(10, 3, clusters=0)
        with pytest.raises(InvalidParameterError):
            gaussian_clusters(10, 3, sigma=-1.0)


class TestCorrelated:
    def test_shape(self):
        assert correlated_points(300, 5, seed=4).shape == (300, 5)

    def test_high_correlation_is_correlated(self):
        points = correlated_points(3000, 4, correlation=0.95, seed=5)
        corr = np.corrcoef(points, rowvar=False)
        off_diagonal = corr[np.triu_indices(4, k=1)]
        assert (off_diagonal > 0.8).all()

    def test_zero_correlation_is_independent(self):
        points = correlated_points(3000, 4, correlation=0.0, seed=6)
        corr = np.corrcoef(points, rowvar=False)
        off_diagonal = corr[np.triu_indices(4, k=1)]
        assert (np.abs(off_diagonal) < 0.1).all()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            correlated_points(10, 3, correlation=1.5)


class TestRandomWalkSeries:
    def test_shape_and_positivity(self):
        series = random_walk_series(40, 100, seed=7)
        assert series.shape == (40, 100)
        assert (series > 0).all()

    def test_family_structure_creates_correlation(self):
        tight = random_walk_series(60, 200, families=3, family_mix=0.95, seed=8)
        loose = random_walk_series(60, 200, families=3, family_mix=0.0, seed=8)

        def max_abs_corr(series):
            returns = np.diff(np.log(series), axis=1)
            corr = np.corrcoef(returns)
            np.fill_diagonal(corr, 0.0)
            return np.abs(corr).max()

        assert max_abs_corr(tight) > max_abs_corr(loose)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            random_walk_series(5, 1)
        with pytest.raises(InvalidParameterError):
            random_walk_series(5, 50, families=0)
        with pytest.raises(InvalidParameterError):
            random_walk_series(5, 50, family_mix=2.0)


class TestDftFeatures:
    def test_shape(self):
        series = random_walk_series(30, 64, seed=9)
        features = dft_features(series, coefficients=6)
        assert features.shape == (30, 12)

    def test_shifted_and_scaled_series_have_same_features(self):
        """z-normalization makes features invariant to offset and scale."""
        series = random_walk_series(10, 64, seed=10)
        features = dft_features(series)
        transformed = dft_features(series * 3.0 + 100.0)
        assert np.allclose(features, transformed, atol=1e-9)

    def test_identical_series_zero_distance(self):
        series = random_walk_series(5, 64, seed=11)
        doubled = np.vstack([series, series])
        features = dft_features(doubled)
        assert np.allclose(features[:5], features[5:])

    def test_energy_skew_toward_low_frequencies(self):
        """Random-walk spectra concentrate energy in low coefficients —
        the skew the paper's feature workloads exhibit."""
        series = random_walk_series(200, 128, seed=12)
        features = dft_features(series, coefficients=8)
        energy = (features**2).mean(axis=0)
        low = energy[0] + energy[8]  # real+imag of coefficient 1
        high = energy[7] + energy[15]  # real+imag of coefficient 8
        assert low > 5 * high

    def test_constant_series_handled(self):
        series = np.ones((3, 32))
        features = dft_features(series)
        assert np.allclose(features, 0.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            dft_features(np.zeros(10))
        with pytest.raises(InvalidParameterError):
            dft_features(np.zeros((3, 16)), coefficients=100)

    def test_end_to_end_wrapper(self):
        features = timeseries_features(25, length=64, coefficients=5, seed=13)
        assert features.shape == (25, 10)


class TestColorHistograms:
    def test_rows_on_simplex(self):
        histograms = color_histograms(200, bins=24, seed=14)
        assert histograms.shape == (200, 24)
        assert (histograms >= 0).all()
        assert np.allclose(histograms.sum(axis=1), 1.0)

    def test_scene_structure_clusters(self):
        tight = color_histograms(300, bins=32, scenes=4, concentration=500.0, seed=15)
        # With huge concentration, images of the same scene are nearly
        # identical: many pairs at tiny L1 distance.
        from repro import similarity_join

        pairs = similarity_join(tight, epsilon=0.2, metric="l1")
        assert len(pairs) > 1000

    def test_mass_is_sparse(self):
        histograms = color_histograms(100, bins=40, sparsity=0.1, seed=16)
        # Most mass must sit in few bins.
        sorted_rows = np.sort(histograms, axis=1)[:, ::-1]
        top_share = sorted_rows[:, :8].sum(axis=1)
        assert (top_share > 0.8).mean() > 0.9

    def test_deterministic_by_seed(self):
        a = color_histograms(20, seed=17)
        b = color_histograms(20, seed=17)
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            color_histograms(10, bins=1)
        with pytest.raises(InvalidParameterError):
            color_histograms(10, concentration=0.0)
        with pytest.raises(InvalidParameterError):
            color_histograms(10, sparsity=0.0)
