"""Tests for the simulated paged storage layer."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError, StorageError
from repro.storage import BufferManager, PageStore, PointFile


class TestPageStore:
    def test_allocate_and_read_roundtrip(self):
        store = PageStore(page_rows=4)
        rows = np.arange(8.0).reshape(4, 2)
        page_id = store.allocate(rows)
        assert (store.read_page(page_id) == rows).all()

    def test_counters_track_physical_io(self):
        store = PageStore(page_rows=4)
        page_id = store.allocate(np.zeros((2, 2)))
        store.read_page(page_id)
        store.read_page(page_id)
        store.write_page(page_id, np.ones((2, 2)))
        assert store.counters.reads == 2
        assert store.counters.writes == 2  # allocate + overwrite

    def test_pages_are_isolated_copies(self):
        store = PageStore(page_rows=4)
        rows = np.zeros((2, 2))
        page_id = store.allocate(rows)
        rows[0, 0] = 99.0
        assert store.read_page(page_id)[0, 0] == 0.0

    def test_overflow_rejected(self):
        store = PageStore(page_rows=2)
        with pytest.raises(StorageError):
            store.allocate(np.zeros((3, 1)))

    def test_out_of_range_rejected(self):
        store = PageStore()
        with pytest.raises(StorageError):
            store.read_page(0)

    def test_bad_page_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            PageStore(page_rows=0)

    def test_counter_snapshot_delta(self):
        store = PageStore(page_rows=4)
        pid = store.allocate(np.zeros((1, 1)))
        before = store.counters.snapshot()
        store.read_page(pid)
        delta = store.counters.delta(before)
        assert delta.reads == 1 and delta.writes == 0


class TestPointFile:
    def test_roundtrip_exact_pages(self):
        store = PageStore(page_rows=5)
        points = np.arange(30.0).reshape(10, 3)
        pfile = PointFile.from_points(store, points)
        assert pfile.num_pages == 2
        assert (pfile.read_all() == points).all()

    def test_roundtrip_with_partial_tail(self):
        store = PageStore(page_rows=4)
        points = np.arange(26.0).reshape(13, 2)
        pfile = PointFile.from_points(store, points)
        assert pfile.num_pages == 4  # 4+4+4+1
        assert (pfile.read_all() == points).all()

    def test_incremental_append_buffers_tail(self):
        store = PageStore(page_rows=4)
        pfile = PointFile(store, dims=2)
        pfile.append_rows(np.zeros((3, 2)))
        assert pfile.num_pages == 0  # nothing flushed yet
        pfile.append_rows(np.ones((3, 2)))
        assert pfile.num_pages == 1  # one full page flushed
        pfile.close_append()
        assert pfile.num_pages == 2
        assert pfile.num_rows == 6

    def test_append_after_close_rejected(self):
        store = PageStore(page_rows=4)
        pfile = PointFile(store, dims=1)
        pfile.close_append()
        with pytest.raises(StorageError):
            pfile.append_rows(np.zeros((1, 1)))

    def test_scan_counts_reads(self):
        store = PageStore(page_rows=3)
        points = np.random.default_rng(0).random((10, 2))
        pfile = PointFile.from_points(store, points)
        before = store.counters.snapshot()
        list(pfile.scan())
        assert store.counters.delta(before).reads == pfile.num_pages

    def test_empty_file(self):
        store = PageStore(page_rows=4)
        pfile = PointFile(store, dims=3)
        pfile.close_append()
        assert pfile.read_all().shape == (0, 3)


class TestBufferManager:
    def test_hit_avoids_physical_read(self):
        store = PageStore(page_rows=2)
        pid = store.allocate(np.zeros((1, 1)))
        buffer = BufferManager(store, capacity=2)
        buffer.get(pid)
        buffer.get(pid)
        assert store.counters.reads == 1
        assert buffer.hits == 1 and buffer.misses == 1

    def test_lru_eviction_order(self):
        store = PageStore(page_rows=2)
        pids = [store.allocate(np.full((1, 1), k)) for k in range(3)]
        buffer = BufferManager(store, capacity=2)
        buffer.get(pids[0])
        buffer.get(pids[1])
        buffer.get(pids[0])  # touch 0 so 1 is the LRU victim
        buffer.get(pids[2])  # evicts 1
        before = store.counters.reads
        buffer.get(pids[0])  # still cached
        assert store.counters.reads == before
        buffer.get(pids[1])  # was evicted -> physical read
        assert store.counters.reads == before + 1

    def test_pinned_pages_survive_eviction(self):
        store = PageStore(page_rows=2)
        pids = [store.allocate(np.full((1, 1), k)) for k in range(4)]
        buffer = BufferManager(store, capacity=2)
        buffer.get(pids[0], pin=True)
        buffer.get(pids[1])
        buffer.get(pids[2])  # must evict 1, not pinned 0
        before = store.counters.reads
        buffer.get(pids[0])
        assert store.counters.reads == before

    def test_all_pinned_raises(self):
        store = PageStore(page_rows=2)
        pids = [store.allocate(np.zeros((1, 1))) for _ in range(3)]
        buffer = BufferManager(store, capacity=2)
        buffer.get(pids[0], pin=True)
        buffer.get(pids[1], pin=True)
        with pytest.raises(StorageError):
            buffer.get(pids[2])

    def test_unpin_balance_enforced(self):
        store = PageStore(page_rows=2)
        pid = store.allocate(np.zeros((1, 1)))
        buffer = BufferManager(store, capacity=2)
        buffer.get(pid, pin=True)
        buffer.unpin(pid)
        with pytest.raises(StorageError):
            buffer.unpin(pid)

    def test_nested_pins(self):
        store = PageStore(page_rows=2)
        pid = store.allocate(np.zeros((1, 1)))
        buffer = BufferManager(store, capacity=1)
        buffer.get(pid, pin=True)
        buffer.get(pid, pin=True)
        buffer.unpin(pid)
        assert buffer.pinned_pages == 1
        buffer.unpin(pid)
        assert buffer.pinned_pages == 0

    def test_flush_drops_unpinned_only(self):
        store = PageStore(page_rows=2)
        pids = [store.allocate(np.zeros((1, 1))) for _ in range(2)]
        buffer = BufferManager(store, capacity=4)
        buffer.get(pids[0], pin=True)
        buffer.get(pids[1])
        buffer.flush()
        before = store.counters.reads
        buffer.get(pids[0])  # still resident
        assert store.counters.reads == before
        buffer.get(pids[1])  # dropped -> physical read
        assert store.counters.reads == before + 1

    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            BufferManager(PageStore(), capacity=0)


class TestSequentialScanModel:
    def test_scan_io_matches_analytic_page_count(self):
        """A full scan reads exactly ceil(n / page_rows) pages."""
        store = PageStore(page_rows=7)
        points = np.random.default_rng(1).random((100, 3))
        pfile = PointFile.from_points(store, points)
        before = store.counters.snapshot()
        pfile.read_all()
        expected_pages = -(-100 // 7)
        assert store.counters.delta(before).reads == expected_pages


class TestEdgeCases:
    """Corner cases of the paged substrate: empty pages, exhausted
    fault budgets, pin pressure, and counter algebra."""

    def test_zero_row_page_roundtrip(self):
        store = PageStore(page_rows=4)
        pid = store.allocate(np.empty((0, 3)))
        page = store.read_page(pid)
        assert page.shape == (0, 3)
        assert store.counters.writes == 1
        assert store.counters.reads == 1

    def test_zero_row_page_overwrite(self):
        store = PageStore(page_rows=4)
        pid = store.allocate(np.ones((2, 3)))
        store.write_page(pid, np.empty((0, 3)))
        assert len(store.read_page(pid)) == 0

    def test_zero_row_point_file(self):
        store = PageStore(page_rows=5)
        pfile = PointFile.from_points(store, np.empty((0, 4)))
        assert pfile.num_pages == 0
        assert pfile.read_all().shape[0] == 0

    def test_read_page_after_fault_exhaustion(self):
        """Every scheduled ordinal fails exactly once; once the plan is
        exhausted the same page reads cleanly, and every attempt —
        failed or not — counts as physical I/O."""
        from repro.core.resilience import FaultPlan
        from repro.errors import TransientIoError

        plan = FaultPlan().fail_page_read(0, 1, 2)
        store = PageStore(page_rows=4, fault_plan=plan)
        pid = store.allocate(np.arange(8.0).reshape(2, 4))
        for _ in range(3):
            with pytest.raises(TransientIoError):
                store.read_page(pid)
        page = store.read_page(pid)
        assert np.array_equal(page, np.arange(8.0).reshape(2, 4))
        assert store.counters.reads == 4
        assert plan.injected == 3

    def test_pinned_page_eviction_pressure(self):
        """With every frame pinned, a miss raises instead of silently
        overcommitting; releasing one pin makes that frame the victim."""
        store = PageStore(page_rows=2)
        pids = [store.allocate(np.full((1, 2), float(i))) for i in range(3)]
        buffer = BufferManager(store, capacity=2)
        buffer.get(pids[0], pin=True)
        buffer.get(pids[1], pin=True)
        with pytest.raises(StorageError, match="pinned"):
            buffer.get(pids[2])
        buffer.unpin(pids[0])
        buffer.get(pids[2])  # evicts the now-unpinned frame 0
        before = store.counters.reads
        buffer.get(pids[1])  # pinned frame survived the pressure
        assert store.counters.reads == before
        buffer.get(pids[0])  # evicted -> physical re-read
        assert store.counters.reads == before + 1

    def test_io_counters_delta_roundtrip(self):
        from repro.storage import PageStore as _PS

        store = _PS(page_rows=2)
        baseline = store.counters.snapshot()
        pid = store.allocate(np.ones((1, 2)))
        store.read_page(pid)
        store.read_page(pid)
        delta = store.counters.delta(baseline)
        assert (delta.reads, delta.writes) == (2, 1)
        # snapshot is a frozen copy, not a live view
        assert (baseline.reads, baseline.writes) == (0, 0)
        # delta of a snapshot against itself is zero
        again = store.counters.snapshot()
        zero = store.counters.delta(again)
        assert (zero.reads, zero.writes) == (0, 0)
        # counters recompose: earlier + delta == now
        assert baseline.reads + delta.reads == store.counters.reads
        assert baseline.writes + delta.writes == store.counters.writes
