"""Tests for the weighted L_p metric across the whole stack.

The subtlety weighted metrics introduce is that coordinate weights below
one allow per-coordinate gaps *larger* than epsilon, so every pruning
structure (grid cells, band sweeps, stripes) must widen to
``coordinate_bound(eps)``.  These tests pin the bound itself and then
check that every join algorithm stays exact under adversarial weights.
"""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs
from repro import JoinSpec, WeightedLpMetric, similarity_join
from repro.baselines import brute_force_self_join
from repro.errors import InvalidParameterError


class TestWeightedMetricUnit:
    def test_weighted_l2_hand_computation(self):
        metric = WeightedLpMetric(2, weights=[4.0, 1.0])
        # sqrt(4 * 3^2 + 1 * 4^2) = sqrt(52)
        assert metric.pair([0.0, 0.0], [3.0, 4.0]) == pytest.approx(
            np.sqrt(52.0)
        )

    def test_weighted_l1(self):
        metric = WeightedLpMetric(1, weights=[2.0, 0.5])
        assert metric.pair([0.0, 0.0], [3.0, 4.0]) == pytest.approx(8.0)

    def test_weighted_linf(self):
        metric = WeightedLpMetric(np.inf, weights=[2.0, 0.5])
        assert metric.pair([0.0, 0.0], [3.0, 4.0]) == pytest.approx(6.0)

    def test_unit_weights_match_unweighted(self):
        from repro.metrics import L2

        metric = WeightedLpMetric(2, weights=np.ones(5))
        rng = np.random.default_rng(0)
        for _ in range(20):
            x, y = rng.random(5), rng.random(5)
            assert metric.pair(x, y) == pytest.approx(L2.pair(x, y))

    def test_coordinate_bound(self):
        metric = WeightedLpMetric(2, weights=[0.25, 1.0])
        # min weight 0.25 -> bound eps / sqrt(0.25) = 2 eps
        assert metric.coordinate_bound(0.1) == pytest.approx(0.2)
        inf_metric = WeightedLpMetric(np.inf, weights=[0.5, 2.0])
        assert inf_metric.coordinate_bound(0.1) == pytest.approx(0.2)

    def test_coordinate_bound_is_tight(self):
        """A pair achieving the bound in one coordinate exists: all other
        coordinates equal, the light coordinate at the bound."""
        metric = WeightedLpMetric(2, weights=[0.25, 1.0])
        eps = 0.4
        bound = metric.coordinate_bound(eps)
        x = np.array([0.0, 0.5])
        y = np.array([bound, 0.5])
        assert metric.pair(x, y) == pytest.approx(eps)

    def test_dimension_mismatch_raises(self):
        metric = WeightedLpMetric(2, weights=[1.0, 1.0])
        with pytest.raises(InvalidParameterError):
            metric.pair([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            WeightedLpMetric(2, weights=[1.0, -1.0])
        with pytest.raises(InvalidParameterError):
            WeightedLpMetric(2, weights=[1.0, 0.0])
        with pytest.raises(InvalidParameterError):
            WeightedLpMetric(0.5, weights=[1.0])
        with pytest.raises(InvalidParameterError):
            WeightedLpMetric(2, weights=np.ones((2, 2)))

    def test_band_width_on_spec(self):
        metric = WeightedLpMetric(2, weights=[0.25, 1.0, 1.0])
        spec = JoinSpec(epsilon=0.1, metric=metric)
        assert spec.band_width == pytest.approx(0.2)
        assert JoinSpec(epsilon=0.1).band_width == pytest.approx(0.1)


@pytest.fixture(scope="module")
def weighted_setup():
    rng = np.random.default_rng(42)
    points = rng.random((900, 6))
    # Adversarial weights: one coordinate nearly free (bound 10x eps),
    # one heavily emphasized.
    weights = np.array([0.01, 4.0, 1.0, 1.0, 0.5, 2.0])
    metric = WeightedLpMetric(2, weights=weights)
    return points, metric


@pytest.mark.parametrize(
    "algorithm",
    ["epsilon-kdb", "rtree", "rplus", "zorder", "sort-merge", "grid"],
)
def test_every_algorithm_exact_under_weighted_metric(algorithm, weighted_setup):
    points, metric = weighted_setup
    spec = JoinSpec(epsilon=0.3, metric=metric)
    expected = oracle_self_pairs(points, spec)
    assert len(expected) > 0, "workload must produce matches"
    pairs = similarity_join(points, epsilon=0.3, metric=metric,
                            algorithm=algorithm)
    assert_same_pairs(pairs, expected, f"weighted {algorithm}")


def test_external_join_exact_under_weighted_metric(weighted_setup):
    from repro import external_self_join

    points, metric = weighted_setup
    spec = JoinSpec(epsilon=0.3, metric=metric)
    expected = oracle_self_pairs(points, spec)
    report = external_self_join(points, spec, memory_points=300)
    assert_same_pairs(report.pairs, expected, "weighted external")


def test_range_query_exact_under_weighted_metric(weighted_setup):
    from repro import EpsilonKdbTree

    points, metric = weighted_setup
    spec = JoinSpec(epsilon=0.3, metric=metric, leaf_size=32)
    tree = EpsilonKdbTree.build(points, spec)
    rng = np.random.default_rng(7)
    for _ in range(10):
        query = rng.random(points.shape[1])
        hits = tree.range_query(query)
        diffs = np.abs(points - query)
        expected = np.flatnonzero(metric.within_gap(diffs, 0.3))
        assert hits.tolist() == expected.tolist()


def test_weighted_two_set_join(weighted_setup):
    from _oracles import oracle_two_set_pairs
    from repro import epsilon_kdb_join

    points, metric = weighted_setup
    other = np.random.default_rng(43).random((600, 6))
    spec = JoinSpec(epsilon=0.3, metric=metric)
    expected = oracle_two_set_pairs(points, other, spec)
    result = epsilon_kdb_join(points, other, spec)
    assert_same_pairs(result.pairs, expected, "weighted two-set")


def test_brute_force_is_the_weighted_oracle(weighted_setup):
    """Sanity-check the oracle itself against a scaled-coordinates trick:
    weighted L2 equals unweighted L2 after scaling each coordinate by
    sqrt(w)."""
    points, metric = weighted_setup
    spec = JoinSpec(epsilon=0.3, metric=metric)
    expected = brute_force_self_join(points, spec).pairs
    scaled = points * np.sqrt(metric.weights)
    unweighted = brute_force_self_join(scaled, JoinSpec(epsilon=0.3)).pairs
    assert expected.shape == unweighted.shape
    assert (expected == unweighted).all()
