"""Correctness tests for the sort-merge band join."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import JoinSpec
from repro.baselines import sort_merge_join, sort_merge_self_join
from repro.datasets import gaussian_clusters


@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
@pytest.mark.parametrize("eps", [0.05, 0.3])
def test_self_join_matches_oracle(metric, eps, small_uniform):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(small_uniform, spec)
    result = sort_merge_self_join(small_uniform, spec)
    assert_same_pairs(result.pairs, expected, f"sm {metric}/{eps}")


def test_one_level_equals_two_level(small_clusters):
    spec = JoinSpec(epsilon=0.12)
    two = sort_merge_self_join(small_clusters, spec, two_level=True)
    one = sort_merge_self_join(small_clusters, spec, two_level=False)
    assert_same_pairs(one.pairs, two.pairs, "1-level vs 2-level")
    # The 2-level filter only reduces full distance computations.
    assert two.stats.distance_computations <= one.stats.distance_computations


@pytest.mark.parametrize("sweep_dim", [0, 3, 7])
def test_sweep_dimension_never_changes_result(sweep_dim, small_uniform):
    spec = JoinSpec(epsilon=0.25)
    expected = oracle_self_pairs(small_uniform, spec)
    result = sort_merge_self_join(small_uniform, spec, sweep_dim=sweep_dim)
    assert_same_pairs(result.pairs, expected, f"sweep_dim={sweep_dim}")


def test_explicit_filter_dim(small_uniform):
    spec = JoinSpec(epsilon=0.25)
    expected = oracle_self_pairs(small_uniform, spec)
    result = sort_merge_self_join(
        small_uniform, spec, sweep_dim=2, filter_dim=5
    )
    assert_same_pairs(result.pairs, expected, "filter_dim=5")


def test_filter_dim_equal_to_sweep_dim_degrades_to_one_level(small_uniform):
    spec = JoinSpec(epsilon=0.25)
    expected = oracle_self_pairs(small_uniform, spec)
    result = sort_merge_self_join(small_uniform, spec, sweep_dim=0, filter_dim=0)
    assert_same_pairs(result.pairs, expected, "filter==sweep")


def test_one_dimensional_input():
    rng = np.random.default_rng(11)
    points = rng.random((400, 1))
    spec = JoinSpec(epsilon=0.01)
    expected = oracle_self_pairs(points, spec)
    result = sort_merge_self_join(points, spec)
    assert_same_pairs(result.pairs, expected, "1-d sort-merge")


def test_two_set_join_matches_oracle():
    left = gaussian_clusters(500, 6, clusters=4, sigma=0.06, seed=21)
    right = gaussian_clusters(700, 6, clusters=4, sigma=0.06, seed=21) + 0.015
    spec = JoinSpec(epsilon=0.18)
    expected = oracle_two_set_pairs(left, right, spec)
    assert len(expected) > 0
    result = sort_merge_join(left, right, spec)
    assert_same_pairs(result.pairs, expected, "sm two-set")


def test_two_set_one_level(small_uniform):
    other = np.random.default_rng(12).random((300, 8))
    spec = JoinSpec(epsilon=0.4)
    expected = oracle_two_set_pairs(small_uniform, other, spec)
    result = sort_merge_join(small_uniform, other, spec, two_level=False)
    assert_same_pairs(result.pairs, expected, "two-set 1-level")


def test_empty_inputs():
    spec = JoinSpec(epsilon=0.1)
    assert sort_merge_self_join(np.empty((0, 2)), spec).count == 0
    assert sort_merge_join(np.empty((0, 2)), np.zeros((3, 2)), spec).count == 0


def test_duplicate_values_on_sweep_dimension():
    # Many ties on the sweep dimension exercise the stable-sort path.
    rng = np.random.default_rng(13)
    points = np.column_stack(
        [np.repeat([0.1, 0.2, 0.3], 50), rng.random(150)]
    )
    spec = JoinSpec(epsilon=0.05)
    expected = oracle_self_pairs(points, spec)
    result = sort_merge_self_join(points, spec)
    assert_same_pairs(result.pairs, expected, "sweep ties")
