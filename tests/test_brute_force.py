"""Tests for the brute-force reference join itself."""

import numpy as np

import repro.baselines.brute_force as bf_module
from repro import JoinSpec
from repro.baselines import brute_force_join, brute_force_self_join


def naive_self(points, spec):
    pairs = []
    for a in range(len(points)):
        for b in range(a + 1, len(points)):
            if spec.metric.within_pair(points[a], points[b], spec.epsilon):
                pairs.append((a, b))
    return pairs


def naive_two(left, right, spec):
    pairs = []
    for a in range(len(left)):
        for b in range(len(right)):
            if spec.metric.within_pair(left[a], right[b], spec.epsilon):
                pairs.append((a, b))
    return pairs


class TestSelfJoin:
    def test_matches_naive_loop(self):
        rng = np.random.default_rng(0)
        points = rng.random((60, 4))
        spec = JoinSpec(epsilon=0.4)
        result = brute_force_self_join(points, spec)
        assert [tuple(p) for p in result.pairs] == naive_self(points, spec)

    def test_handcrafted_case(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [1.0, 1.0]])
        result = brute_force_self_join(points, JoinSpec(epsilon=0.15))
        assert result.pairs.tolist() == [[0, 1]]

    def test_no_diagonal_pairs(self):
        points = np.tile([[0.3, 0.3]], (10, 1))
        result = brute_force_self_join(points, JoinSpec(epsilon=0.5))
        assert result.count == 45
        assert (result.pairs[:, 0] < result.pairs[:, 1]).all()

    def test_block_boundary_crossing(self, monkeypatch):
        """Force multiple tiles to check the boundary arithmetic."""
        monkeypatch.setattr(bf_module, "BLOCK", 7)
        rng = np.random.default_rng(1)
        points = rng.random((40, 3))
        spec = JoinSpec(epsilon=0.5)
        tiled = brute_force_self_join(points, spec)
        assert [tuple(p) for p in tiled.pairs] == naive_self(points, spec)

    def test_counts_every_pair_checked(self):
        points = np.random.default_rng(2).random((100, 2))
        result = brute_force_self_join(points, JoinSpec(epsilon=0.1))
        # The diagonal tile checks the full square, so the count is
        # between C(n,2) and n^2.
        assert 100 * 99 // 2 <= result.stats.distance_computations <= 100 * 100


class TestTwoSetJoin:
    def test_matches_naive_loop(self):
        rng = np.random.default_rng(3)
        left = rng.random((30, 3))
        right = rng.random((45, 3))
        spec = JoinSpec(epsilon=0.35)
        result = brute_force_join(left, right, spec)
        assert [tuple(p) for p in result.pairs] == naive_two(left, right, spec)

    def test_block_boundary_crossing(self, monkeypatch):
        monkeypatch.setattr(bf_module, "BLOCK", 5)
        rng = np.random.default_rng(4)
        left = rng.random((23, 2))
        right = rng.random((17, 2))
        spec = JoinSpec(epsilon=0.4)
        result = brute_force_join(left, right, spec)
        assert [tuple(p) for p in result.pairs] == naive_two(left, right, spec)

    def test_empty_sides(self):
        spec = JoinSpec(epsilon=0.1)
        empty = np.empty((0, 2))
        other = np.zeros((3, 2))
        assert brute_force_join(empty, other, spec).count == 0
        assert brute_force_join(other, empty, spec).count == 0
