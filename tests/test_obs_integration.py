"""Integration tests: tracing the join stack end to end.

The acceptance scenario of the observability subsystem: a traced
parallel join under an injected worker crash must produce ONE stitched
trace showing the failed attempt, the retry, and the deterministic
merge — and tracing must never change the join's output.
"""

import os

import numpy as np
import pytest

from repro import FaultPlan, JoinSpec, similarity_join
from repro.core import external_self_join
from repro.core.join import epsilon_kdb_self_join
from repro.core.parallel import ParallelJoinExecutor
from repro.obs import MetricsRegistry, Tracer, trace
from repro.storage.pages import PageStore


def _shm_listing():
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError):  # pragma: no cover
        return None


@pytest.fixture
def shm_guard():
    """Assert the test leaked no shared-memory segments."""
    before = _shm_listing()
    yield
    if before is not None:
        leaked = _shm_listing() - before
        assert not leaked, f"leaked shared memory segments: {sorted(leaked)}"


def _points(n=600, dims=4, seed=7):
    return np.random.default_rng(seed).random((n, dims))


class TestTracedSerialJoin:
    def test_phases_and_timings_from_spans(self):
        points = _points()
        tracer = Tracer()
        with trace.activate(tracer):
            result = epsilon_kdb_self_join(points, JoinSpec(epsilon=0.25))
        names = [s["name"] for s in tracer.export()]
        assert "build" in names
        assert "self-join-traversal" in names
        spans = {s["name"]: s for s in tracer.export()}
        # JoinResult timings are now derived from the spans themselves
        assert result.build_seconds == pytest.approx(
            spans["build"]["duration"]
        )
        assert result.join_seconds == pytest.approx(
            spans["self-join-traversal"]["duration"]
        )
        assert spans["self-join-traversal"]["attributes"]["pairs"] == len(
            result.pairs
        )


class TestTracedParallelJoin:
    def test_crash_retry_produces_single_stitched_trace(self, shm_guard):
        """The acceptance scenario: crash → failed span, retry, merge."""
        points = _points(n=3000, dims=3, seed=3)
        spec = JoinSpec(epsilon=0.2, n_workers=2)
        untraced = ParallelJoinExecutor(
            spec, serial_threshold=0
        ).self_join(points)

        tracer = Tracer()
        plan = FaultPlan().crash_task(0)
        with trace.activate(tracer):
            executor = ParallelJoinExecutor(
                spec, serial_threshold=0, fault_plan=plan
            )
            traced = executor.self_join(points)

        # results are byte-identical with tracing enabled and a fault injected
        np.testing.assert_array_equal(traced.pairs, untraced.pairs)
        assert traced.stats.tasks_retried == 1

        spans = tracer.export()
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)

        # one trace, one root
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["parallel-self-join"]

        # the failed attempt was recorded parent-side...
        failed = [
            s
            for s in by_name["stripe-task"]
            if str(s["attributes"].get("outcome", "")).startswith("crashed")
        ]
        assert len(failed) == 1
        assert failed[0]["attributes"]["task"] == 0
        assert failed[0]["attributes"]["attempt"] == 0

        # ...the successful retry shipped its spans from the worker...
        retried_ok = [
            s
            for s in by_name["stripe-task"]
            if s["attributes"].get("outcome") == "ok"
            and s["attributes"]["task"] == 0
        ]
        assert len(retried_ok) == 1
        assert retried_ok[0]["attributes"]["attempt"] == 1

        # ...and the retry itself is an event on the dispatch span
        dispatch = by_name["dispatch"][0]
        assert any(e["name"] == "task-retry" for e in dispatch["events"])

        # every ok stripe-task stitched its worker-side children
        ids = {s["span_id"]: s for s in spans}
        for task_span in by_name["stripe-task"]:
            if task_span["attributes"].get("outcome") != "ok":
                continue
            children = [
                s for s in spans if s["parent_id"] == task_span["span_id"]
            ]
            assert sorted(c["name"] for c in children) == [
                "build",
                "self-join-traversal",
            ]
            # worker spans really came from another process
            assert task_span["pid"] != os.getpid() or task_span[
                "attributes"
            ].get("in_parent")
            assert ids[task_span["parent_id"]]["name"] == "dispatch"

        # the deterministic merge is a span with its dedup accounting
        merge = by_name["merge"][0]
        assert merge["attributes"]["pairs"] == len(traced.pairs)
        assert "duplicate_pairs_merged" in merge["attributes"]

    def test_injected_crash_is_an_event_in_worker_span(self, shm_guard):
        # In-process mode traces straight into the ambient tracer, so the
        # injected-fault events land on the (parent-recorded) attempt span.
        points = _points(n=2500, dims=3, seed=5)
        spec = JoinSpec(epsilon=0.2, n_workers=2)
        tracer = Tracer()
        with trace.activate(tracer):
            ParallelJoinExecutor(
                spec,
                serial_threshold=0,
                use_processes=False,
                fault_plan=FaultPlan().crash_task(0),
                retry_backoff=0.0,
            ).self_join(points)
        events = [
            e["name"]
            for s in tracer.export()
            for e in s["events"]
        ]
        assert "injected-crash" in events
        assert "task-retry" in events

    def test_degradation_is_traced(self, shm_guard):
        points = _points(n=2500, dims=3, seed=9)
        spec = JoinSpec(epsilon=0.2, n_workers=2)
        tracer = Tracer()
        with trace.activate(tracer):
            result = ParallelJoinExecutor(
                spec,
                serial_threshold=0,
                fault_plan=FaultPlan().fail_pool_creation(),
            ).self_join(points)
        assert result.stats.degraded_to_serial
        root = [s for s in tracer.export() if s["parent_id"] is None][0]
        assert root["name"] == "parallel-self-join"
        assert any(
            e["name"] == "degraded-to-serial" for e in root["events"]
        )

    def test_tracing_disabled_results_identical(self, shm_guard):
        points = _points(n=3000, dims=3, seed=11)
        pairs_plain = similarity_join(points, epsilon=0.2, n_workers=2)
        tracer = Tracer()
        with trace.activate(tracer):
            pairs_traced = similarity_join(points, epsilon=0.2, n_workers=2)
        np.testing.assert_array_equal(pairs_plain, pairs_traced)
        assert len(tracer) > 0


class TestTracedExternalJoin:
    def test_pass_structure_and_stripe_spans(self):
        points = _points(n=900, dims=3, seed=13)
        tracer = Tracer()
        with trace.activate(tracer):
            report = external_self_join(
                points,
                JoinSpec(epsilon=0.2),
                memory_points=300,
                page_rows=64,
            )
        by_name = {}
        for span in tracer.export():
            by_name.setdefault(span["name"], []).append(span)
        for phase in (
            "load-relation",
            "domain-pass",
            "histogram-pass",
            "partition-pass",
            "join-pass",
        ):
            assert phase in by_name, f"missing {phase} span"
        stripes = by_name["stripe"]
        assert len(stripes) == report.stripes
        join_pass = by_name["join-pass"][0]
        assert all(
            s["parent_id"] == join_pass["span_id"] for s in stripes
        )

    def test_io_fault_recovery_is_annotated(self):
        points = _points(n=900, dims=3, seed=17)
        plan = FaultPlan().fail_page_read(2)
        store = PageStore(page_rows=64, fault_plan=plan)
        tracer = Tracer()
        with trace.activate(tracer):
            report = external_self_join(
                points,
                JoinSpec(epsilon=0.2),
                memory_points=300,
                store=store,
            )
        assert report.stats.storage_retries == 1
        events = [
            e for s in tracer.export() for e in s["events"]
        ]
        io_events = [e for e in events if e["name"] == "injected-io-fault"]
        assert len(io_events) == 1
        assert io_events[0]["attributes"]["read_ordinal"] == 2


class TestPageStoreMetrics:
    def test_store_mirrors_io_into_registry(self):
        registry = MetricsRegistry()
        store = PageStore(page_rows=8, metrics=registry)
        page = store.allocate(np.zeros((8, 2)))
        store.read_page(page)
        store.read_page(page)
        store.write_page(page, np.ones((4, 2)))
        assert registry.counter("storage.pages_read").value == 2
        assert registry.counter("storage.pages_written").value == 2
        assert store.counters.reads == 2
        assert store.counters.writes == 2
