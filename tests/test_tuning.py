"""Tests for the leaf-threshold auto-tuner."""

import pytest

from repro import JoinSpec
from repro.analysis.tuning import (
    DEFAULT_CANDIDATES,
    probe_leaf_sizes,
    recommend_leaf_size,
)
from repro.core import epsilon_kdb_self_join
from repro.core.result import PairCounter
from repro.datasets import gaussian_clusters
from repro.errors import InvalidParameterError


@pytest.fixture(scope="module")
def workload():
    return gaussian_clusters(5000, 16, clusters=10, sigma=0.05, seed=13)


class TestProbes:
    def test_one_probe_per_candidate(self, workload):
        probes = probe_leaf_sizes(
            workload, JoinSpec(epsilon=0.1), candidates=(8, 64, 512)
        )
        assert [p.leaf_size for p in probes] == [8, 64, 512]

    def test_probes_are_deterministic(self, workload):
        spec = JoinSpec(epsilon=0.1)
        first = probe_leaf_sizes(workload, spec, sample=1000, seed=4)
        second = probe_leaf_sizes(workload, spec, sample=1000, seed=4)
        assert [(p.leaf_size, p.score) for p in first] == [
            (p.leaf_size, p.score) for p in second
        ]

    def test_counters_move_in_opposite_directions(self, workload):
        """Bigger leaves: more candidates, fewer node visits — the
        tradeoff the score balances."""
        probes = probe_leaf_sizes(
            workload, JoinSpec(epsilon=0.1), candidates=(16, 1024), sample=3000
        )
        small, big = probes
        assert small.distance_computations <= big.distance_computations
        assert small.node_pairs_visited >= big.node_pairs_visited

    def test_validation(self, workload):
        with pytest.raises(InvalidParameterError):
            probe_leaf_sizes(workload, JoinSpec(epsilon=0.1), candidates=())
        with pytest.raises(InvalidParameterError):
            probe_leaf_sizes(workload, JoinSpec(epsilon=0.1), candidates=(0,))


class TestRecommendation:
    def test_recommends_a_candidate(self, workload):
        best, probes = recommend_leaf_size(workload, JoinSpec(epsilon=0.1))
        assert best in DEFAULT_CANDIDATES
        assert len(probes) == len(DEFAULT_CANDIDATES)

    def test_avoids_the_pathological_extreme(self, workload):
        """Leaf size 1 explodes node visits; the score must reject it in
        favour of any reasonable threshold."""
        best, _ = recommend_leaf_size(
            workload, JoinSpec(epsilon=0.1), candidates=(1, 256)
        )
        assert best == 256

    def test_recommendation_actually_joins_well(self, workload):
        """The recommended threshold must be near-optimal in *measured
        work score* among the candidates on the full data."""
        spec = JoinSpec(epsilon=0.1)
        best, _ = recommend_leaf_size(workload, spec, sample=2500)

        def full_score(leaf_size):
            sink = PairCounter()
            result = epsilon_kdb_self_join(
                workload, JoinSpec(epsilon=0.1, leaf_size=leaf_size), sink=sink
            )
            from repro.analysis.tuning import NODE_OVERHEAD

            return (
                result.stats.distance_computations
                + NODE_OVERHEAD * result.stats.node_pairs_visited
            )

        scores = {c: full_score(c) for c in DEFAULT_CANDIDATES}
        assert scores[best] <= 2.0 * min(scores.values())
