"""Correctness tests for the epsilon-grid hash join."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import JoinSpec
from repro.baselines import grid_join, grid_self_join
from repro.baselines.grid import _bucket
from repro.datasets import gaussian_clusters
from repro.errors import InvalidParameterError


@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
@pytest.mark.parametrize("eps", [0.05, 0.3])
def test_self_join_matches_oracle(metric, eps, small_uniform):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(small_uniform, spec)
    result = grid_self_join(small_uniform, spec)
    assert_same_pairs(result.pairs, expected, f"grid {metric}/{eps}")


@pytest.mark.parametrize("grid_dims", [1, 2, 3, 5])
def test_grid_dims_never_changes_result(grid_dims, small_uniform):
    spec = JoinSpec(epsilon=0.2)
    expected = oracle_self_pairs(small_uniform, spec)
    result = grid_self_join(small_uniform, spec, grid_dims=grid_dims)
    assert_same_pairs(result.pairs, expected, f"grid_dims={grid_dims}")


def test_grid_dims_bounds():
    points = np.zeros((4, 3))
    with pytest.raises(InvalidParameterError):
        grid_self_join(points, JoinSpec(epsilon=0.1), grid_dims=0)
    with pytest.raises(InvalidParameterError):
        grid_self_join(points, JoinSpec(epsilon=0.1), grid_dims=4)


def test_negative_coordinates():
    rng = np.random.default_rng(14)
    points = rng.normal(0.0, 1.0, size=(500, 4))
    spec = JoinSpec(epsilon=0.3)
    expected = oracle_self_pairs(points, spec)
    result = grid_self_join(points, spec)
    assert_same_pairs(result.pairs, expected, "negative coords")


def test_two_set_join_matches_oracle():
    left = gaussian_clusters(500, 5, clusters=4, sigma=0.05, seed=31)
    right = gaussian_clusters(600, 5, clusters=4, sigma=0.05, seed=31) + 0.01
    spec = JoinSpec(epsilon=0.15)
    expected = oracle_two_set_pairs(left, right, spec)
    assert len(expected) > 0
    result = grid_join(left, right, spec)
    assert_same_pairs(result.pairs, expected, "grid two-set")


def test_bucket_partitions_all_points(small_uniform):
    groups = _bucket(small_uniform, eps=0.2, grid_dims=2)
    members = np.sort(np.concatenate(list(groups.values())))
    assert members.tolist() == list(range(len(small_uniform)))


def test_bucket_keys_match_cells(small_uniform):
    eps = 0.15
    groups = _bucket(small_uniform, eps=eps, grid_dims=3)
    for key, members in groups.items():
        cells = np.floor(small_uniform[members, :3] / eps).astype(np.int64)
        assert (cells == np.array(key)).all()


def test_empty_and_tiny():
    spec = JoinSpec(epsilon=0.1)
    assert grid_self_join(np.empty((0, 2)), spec).count == 0
    assert grid_self_join(np.array([[0.5, 0.5]]), spec).count == 0
    assert grid_join(np.empty((0, 2)), np.zeros((2, 2)), spec).count == 0
