"""Tests for dataset loading and saving."""

import numpy as np
import pytest

from repro.datasets import load_points, save_pairs, save_points
from repro.errors import InvalidParameterError


class TestRoundTrips:
    def test_npy_roundtrip(self, tmp_path):
        points = np.random.default_rng(0).random((40, 5))
        path = str(tmp_path / "points.npy")
        save_points(path, points)
        loaded = load_points(path)
        assert np.allclose(loaded, points)

    def test_csv_roundtrip(self, tmp_path):
        points = np.random.default_rng(1).random((25, 3))
        path = str(tmp_path / "points.csv")
        save_points(path, points)
        loaded = load_points(path)
        assert np.allclose(loaded, points)

    def test_single_row_csv_keeps_2d(self, tmp_path):
        path = str(tmp_path / "one.csv")
        save_points(path, np.array([[0.1, 0.2, 0.3]]))
        loaded = load_points(path)
        assert loaded.shape == (1, 3)

    def test_pairs_npy_and_csv(self, tmp_path):
        pairs = np.array([[0, 1], [2, 5]], dtype=np.int64)
        for name in ("pairs.npy", "pairs.csv"):
            path = str(tmp_path / name)
            save_pairs(path, pairs)
            if name.endswith(".npy"):
                assert (np.load(path) == pairs).all()
            else:
                assert (
                    np.loadtxt(path, delimiter=",", ndmin=2).astype(int)
                    == pairs
                ).all()


class TestValidation:
    def test_missing_file(self):
        with pytest.raises(InvalidParameterError):
            load_points("/nonexistent/file.npy")

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "points.parquet"
        path.write_text("not a dataset")
        with pytest.raises(InvalidParameterError):
            load_points(str(path))
        with pytest.raises(InvalidParameterError):
            save_points(str(path), np.zeros((2, 2)))

    def test_loaded_data_is_validated(self, tmp_path):
        path = str(tmp_path / "bad.npy")
        np.save(path, np.array([[0.0, np.nan]]))
        with pytest.raises(InvalidParameterError):
            load_points(path)

    def test_save_pairs_validates_shape(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            save_pairs(str(tmp_path / "p.npy"), np.zeros((3, 3)))
