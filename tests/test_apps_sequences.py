"""Tests for the whole-sequence matching application."""

import numpy as np
import pytest

from repro.apps.sequences import (
    find_similar_sequences,
    normalized_sequences,
    true_distances,
)
from repro.datasets import random_walk_series
from repro.errors import InvalidParameterError


def brute_force_sequence_pairs(series, epsilon):
    normalized = normalized_sequences(series)
    pairs = []
    for a in range(len(series)):
        for b in range(a + 1, len(series)):
            dist = float(np.linalg.norm(normalized[a] - normalized[b]))
            if dist <= epsilon:
                pairs.append((a, b))
    return pairs


@pytest.fixture(scope="module")
def market():
    return random_walk_series(300, 128, families=6, family_mix=0.8, seed=55)


class TestNormalization:
    def test_zero_mean_unit_variance(self, market):
        normalized = normalized_sequences(market)
        assert np.allclose(normalized.mean(axis=1), 0.0, atol=1e-12)
        assert np.allclose(normalized.std(axis=1), 1.0, atol=1e-9)

    def test_constant_rows_become_zero(self):
        normalized = normalized_sequences(np.full((2, 16), 7.0))
        assert np.allclose(normalized, 0.0)


class TestExactness:
    @pytest.mark.parametrize("epsilon", [2.0, 5.0, 9.0])
    def test_matches_equal_brute_force(self, market, epsilon):
        result = find_similar_sequences(market, epsilon=epsilon)
        expected = brute_force_sequence_pairs(market, epsilon)
        assert [tuple(p) for p in result.pairs] == expected

    @pytest.mark.parametrize("coefficients", [2, 4, 8, 16])
    def test_no_false_dismissals_at_any_feature_count(self, market, coefficients):
        """The Parseval bound must hold regardless of how few
        coefficients the filter keeps."""
        epsilon = 6.0
        expected = brute_force_sequence_pairs(market, epsilon)
        result = find_similar_sequences(
            market, epsilon=epsilon, coefficients=coefficients
        )
        assert [tuple(p) for p in result.pairs] == expected

    def test_reported_distances_verified(self, market):
        result = find_similar_sequences(market, epsilon=6.0)
        assert (result.distances <= 6.0).all()
        normalized = normalized_sequences(market)
        recomputed = true_distances(normalized, result.pairs)
        assert np.allclose(result.distances, recomputed)


class TestFilterQuality:
    def test_features_lower_bound_true_distance(self, market):
        """dist(features) <= dist(sequences) — the no-dismissal lemma,
        checked directly on random pairs."""
        import math

        from repro.datasets.timeseries import dft_features

        features = math.sqrt(2.0) * dft_features(market, coefficients=8)
        normalized = normalized_sequences(market)
        rng = np.random.default_rng(0)
        lefts = rng.integers(0, len(market), 300)
        rights = rng.integers(0, len(market), 300)
        feature_dist = np.linalg.norm(
            features[lefts] - features[rights], axis=1
        )
        true_dist = np.linalg.norm(
            normalized[lefts] - normalized[rights], axis=1
        )
        assert (feature_dist <= true_dist + 1e-9).all()

    def test_more_coefficients_tighter_filter(self, market):
        coarse = find_similar_sequences(market, epsilon=6.0, coefficients=2)
        fine = find_similar_sequences(market, epsilon=6.0, coefficients=16)
        assert fine.candidates <= coarse.candidates
        assert fine.matches == coarse.matches  # exactness is unaffected

    def test_candidate_ratio_reported(self, market):
        result = find_similar_sequences(market, epsilon=6.0, coefficients=8)
        assert result.candidates >= result.matches
        if result.matches:
            assert result.candidate_ratio >= 1.0

    def test_keep_candidates_flag(self, market):
        result = find_similar_sequences(
            market, epsilon=6.0, keep_candidates=True
        )
        assert len(result.candidate_pairs) == result.candidates


class TestEdgeCases:
    def test_tiny_inputs(self):
        empty = np.empty((0, 32))
        assert find_similar_sequences(empty, epsilon=1.0).matches == 0
        one = random_walk_series(1, 32, seed=1)
        assert find_similar_sequences(one, epsilon=1.0).matches == 0

    def test_identical_sequences_always_match(self):
        series = np.tile(random_walk_series(1, 64, seed=2), (5, 1))
        result = find_similar_sequences(series, epsilon=0.001)
        assert result.matches == 10  # C(5, 2)
        assert np.allclose(result.distances, 0.0)

    def test_validation(self, market):
        with pytest.raises(InvalidParameterError):
            find_similar_sequences(market[0], epsilon=1.0)
        with pytest.raises(InvalidParameterError):
            find_similar_sequences(market, epsilon=-1.0)
