"""Correctness tests for the R-tree spatial join."""

import numpy as np
import pytest

from _oracles import assert_same_pairs, oracle_self_pairs, oracle_two_set_pairs
from repro import JoinSpec, PairCounter
from repro.baselines import RTree, rtree_join, rtree_self_join
from repro.datasets import gaussian_clusters
from repro.errors import InvalidParameterError


@pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
@pytest.mark.parametrize("eps", [0.05, 0.2, 0.5])
def test_self_join_matches_oracle(metric, eps, small_uniform):
    spec = JoinSpec(epsilon=eps, metric=metric)
    expected = oracle_self_pairs(small_uniform, spec)
    result = rtree_self_join(small_uniform, spec)
    assert_same_pairs(result.pairs, expected, f"rtree {metric}/{eps}")


@pytest.mark.parametrize("max_entries", [4, 16, 64])
def test_fanout_never_changes_result(max_entries, small_clusters):
    spec = JoinSpec(epsilon=0.1)
    expected = oracle_self_pairs(small_clusters, spec)
    result = rtree_self_join(small_clusters, spec, max_entries=max_entries)
    assert_same_pairs(result.pairs, expected, f"fanout={max_entries}")


def test_two_set_join_matches_oracle():
    left = gaussian_clusters(600, 6, clusters=4, sigma=0.05, seed=1)
    right = gaussian_clusters(800, 6, clusters=4, sigma=0.05, seed=1) + 0.02
    spec = JoinSpec(epsilon=0.2)
    expected = oracle_two_set_pairs(left, right, spec)
    assert len(expected) > 0
    result = rtree_join(left, right, spec)
    assert_same_pairs(result.pairs, expected, "rtree two-set")


def test_two_set_dim_mismatch_raises():
    with pytest.raises(InvalidParameterError):
        rtree_join(np.zeros((2, 2)), np.zeros((2, 4)), JoinSpec(epsilon=0.1))


def test_prebuilt_tree_reused(small_uniform):
    spec = JoinSpec(epsilon=0.3)
    tree = RTree.bulk_load(small_uniform)
    direct = rtree_self_join(small_uniform, spec)
    reused = rtree_self_join(small_uniform, spec, tree=tree)
    assert_same_pairs(reused.pairs, direct.pairs, "prebuilt rtree")
    assert reused.build_seconds <= direct.build_seconds or True  # timing only


def test_incrementally_built_tree_joins_correctly():
    rng = np.random.default_rng(10)
    points = rng.random((400, 4))
    spec = JoinSpec(epsilon=0.25)
    tree = RTree(points, max_entries=8)
    for index in range(len(points)):
        tree.insert(index)
    expected = oracle_self_pairs(points, spec)
    result = rtree_self_join(points, spec, tree=tree)
    assert_same_pairs(result.pairs, expected, "incremental rtree join")


def test_counter_sink(small_uniform):
    spec = JoinSpec(epsilon=0.3)
    collected = rtree_self_join(small_uniform, spec)
    counter = PairCounter()
    rtree_self_join(small_uniform, spec, sink=counter)
    assert counter.count == len(collected.pairs)


def test_empty_and_tiny_inputs():
    spec = JoinSpec(epsilon=0.1)
    assert rtree_self_join(np.empty((0, 2)), spec).count == 0
    assert rtree_self_join(np.array([[0.5, 0.5]]), spec).count == 0
    assert rtree_join(np.empty((0, 2)), np.array([[0.0, 0.0]]), spec).count == 0


def test_duplicate_points():
    points = np.tile([[0.4, 0.6, 0.1]], (25, 1))
    result = rtree_self_join(points, JoinSpec(epsilon=0.001))
    assert result.count == 25 * 24 // 2


def test_high_dimensional_degradation_counter(small_uniform):
    """In high-d, the R-tree join checks many more candidates than the
    output size — the phenomenon E2 measures."""
    spec = JoinSpec(epsilon=0.25)
    result = rtree_self_join(small_uniform, spec)
    assert result.stats.distance_computations > 10 * max(1, result.count)
