"""End-to-end crash-recovery smoke: SIGKILL a live session, reopen, compare.

Unlike the fault-injection tests (which simulate crashes in-process via
:class:`~repro.core.config.FaultPlan`), this script kills a *real*
subprocess with ``SIGKILL`` — no ``atexit``, no ``finally``, no flush on
the way down — at two different points:

* ``stream``  — mid-way through a deterministic insert/delete stream;
* ``compact`` — immediately around a snapshot publish (the kill races
  the ``compact()`` call, so over CI runs it lands before, inside, and
  after the publish; every landing must satisfy the same contract).

After each kill the parent re-opens the directory and checks the
durability contract:

1. the recovered ``last_update_seq`` covers at least every update the
   child acknowledged on stdout before dying;
2. the recovered pair set is byte-identical to a never-crashed oracle
   session that applied exactly the recovered prefix of the stream;
3. the remaining updates apply cleanly on top, and the final pair set is
   byte-identical to an uninterrupted end-to-end run.

The recovery is traced; span JSONL plus a summary JSON land in ``--out``
so CI can archive them.

Usage::

    PYTHONPATH=src python scripts/recovery_smoke.py --out recovery-smoke/
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro import JoinSpec
from repro.core.incremental import IncrementalJoin
from repro.obs import Tracer, trace, write_jsonl

DIMS = 6
EPSILON = 0.25
BATCH_N = 120
N_BATCHES = 10

#: Stream mode: the parent kills after this acknowledgement line.
STREAM_KILL_AFTER = 4
#: Compact mode: updates applied before the raced explicit compact().
COMPACT_PREFIX = 5


def make_updates():
    """The deterministic update stream both parent and child replay."""
    rng = np.random.default_rng(7)
    updates = []
    next_id = 0
    for index in range(N_BATCHES):
        if index in (3, 7):
            updates.append(("delete", list(range(next_id - 20, next_id - 10))))
        else:
            updates.append(("insert", rng.random((BATCH_N, DIMS))))
            next_id += BATCH_N
    return updates


def apply_update(session, update):
    op, payload = update
    if op == "insert":
        session.insert(payload)
    else:
        session.delete(payload)


def make_spec(mode: str) -> JoinSpec:
    # Stream mode lets auto-compaction fire naturally; compact mode
    # disables it so the explicit, parent-raced compact() is the only
    # snapshot publish in play.
    threshold = 10_000_000 if mode == "compact" else 300
    return JoinSpec(epsilon=EPSILON, delta_threshold=threshold)


def child(path: str, mode: str) -> int:
    updates = make_updates()
    session = IncrementalJoin.open(path, spec=make_spec(mode))
    if mode == "stream":
        for index, update in enumerate(updates):
            apply_update(session, update)
            print(f"applied {index + 1}", flush=True)
            time.sleep(0.05)
    else:
        for update in updates[:COMPACT_PREFIX]:
            apply_update(session, update)
        print(f"applied {COMPACT_PREFIX}", flush=True)
        print("compacting", flush=True)
        session.compact()
        for index, update in enumerate(updates[COMPACT_PREFIX:]):
            apply_update(session, update)
            print(f"applied {COMPACT_PREFIX + index + 1}", flush=True)
            time.sleep(0.05)
    # Reached only if the parent never killed us: that is a harness bug.
    print("child survived the whole stream", file=sys.stderr)
    return 3


def sorted_pairs(pairs: np.ndarray) -> np.ndarray:
    if len(pairs) == 0:
        return pairs
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def oracle_state(updates, upto: int):
    """Pair bytes + live count after the first ``upto`` updates, no disk."""
    session = IncrementalJoin(make_spec("stream"))
    for update in updates[:upto]:
        apply_update(session, update)
    return sorted_pairs(session.current_pairs()), session.n_live


def run_scenario(mode: str, out_dir: str) -> dict:
    workdir = tempfile.mkdtemp(prefix=f"recovery-smoke-{mode}-")
    path = os.path.join(workdir, "index")
    updates = make_updates()
    try:
        proc = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--child", mode, path],
            stdout=subprocess.PIPE,
            text=True,
        )
        kill_line = (
            f"applied {STREAM_KILL_AFTER}" if mode == "stream" else "compacting"
        )
        acked = 0
        for line in proc.stdout:
            line = line.strip()
            if line.startswith("applied "):
                acked = int(line.split()[1])
            if line == kill_line:
                proc.send_signal(signal.SIGKILL)
                break
        proc.wait(timeout=30)
        if proc.returncode != -signal.SIGKILL:
            raise AssertionError(
                f"{mode}: child exited {proc.returncode} instead of dying "
                "to SIGKILL — the harness never killed it"
            )

        tracer = Tracer()
        started = time.perf_counter()
        with trace.activate(tracer):
            session = IncrementalJoin.open(path)
        reopen_seconds = time.perf_counter() - started
        try:
            recovered_seq = session.last_update_seq
            if recovered_seq < acked:
                raise AssertionError(
                    f"{mode}: durability violated — child acknowledged "
                    f"{acked} updates but recovery replayed {recovered_seq}"
                )
            expected_pairs, expected_live = oracle_state(updates, recovered_seq)
            got = sorted_pairs(session.current_pairs())
            if got.tobytes() != expected_pairs.tobytes():
                raise AssertionError(
                    f"{mode}: recovered pairs diverged from the oracle at "
                    f"seq {recovered_seq}"
                )
            if session.n_live != expected_live:
                raise AssertionError(
                    f"{mode}: recovered {session.n_live} live points, "
                    f"oracle has {expected_live}"
                )

            for update in updates[recovered_seq:]:
                apply_update(session, update)
            session.compact()
            final = sorted_pairs(session.current_pairs())
        finally:
            stats = session.stats
            session.close()

        full_pairs, full_live = oracle_state(updates, len(updates))
        if final.tobytes() != full_pairs.tobytes():
            raise AssertionError(
                f"{mode}: post-recovery continuation diverged from the "
                "uninterrupted run"
            )

        spans = tracer.export()
        names = {s["name"] for s in spans}
        if "recover" not in names:
            raise AssertionError(f"{mode}: no recover span traced: {names}")
        write_jsonl(spans, os.path.join(out_dir, f"recover_{mode}.jsonl"))
        return {
            "mode": mode,
            "acknowledged_before_kill": acked,
            "recovered_seq": recovered_seq,
            "final_seq": len(updates),
            "final_pairs": int(len(final)),
            "final_live": int(full_live),
            "wal_records_replayed": stats.wal_records_replayed,
            "corrupt_frames_discarded": stats.corrupt_frames_discarded,
            "snapshot_bytes": stats.snapshot_bytes,
            "reopen_seconds": reopen_seconds,
            "recover_spans": int(len(spans)),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--child",
        nargs=2,
        metavar=("MODE", "PATH"),
        help="internal: run the to-be-killed session (mode: stream|compact)",
    )
    parser.add_argument("--out", default="recovery-smoke")
    args = parser.parse_args()

    if args.child:
        mode, path = args.child
        return child(path, mode)

    os.makedirs(args.out, exist_ok=True)
    results = [run_scenario(mode, args.out) for mode in ("stream", "compact")]
    summary_path = os.path.join(args.out, "summary.json")
    with open(summary_path, "w") as handle:
        json.dump({"scenarios": results}, handle, indent=2)
        handle.write("\n")
    for result in results:
        print(
            f"{result['mode']}: killed after ack {result['acknowledged_before_kill']}, "
            f"recovered seq {result['recovered_seq']} "
            f"({result['wal_records_replayed']} WAL records, "
            f"{result['corrupt_frames_discarded']} frames discarded), "
            f"continued to seq {result['final_seq']} — "
            f"{result['final_pairs']} pairs byte-identical to the "
            f"uninterrupted run"
        )
    print(f"summary: {summary_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
