"""End-to-end serving smoke: real server process, restart, byte-compare.

The serve tests (:mod:`tests.test_serve`) exercise the server in-process.
This script runs the whole stack the way an operator would — a real
``python -m repro serve`` subprocess on a loopback port, talked to over
TCP by :class:`~repro.serve.ServeClient` — and checks the acceptance
contract for the serving layer:

1. attach a persisted tenant, stream inserts and deletes through the
   wire, and answer coalesced concurrent range queries;
2. shut the server down cleanly (``shutdown`` op, exit code 0), start a
   *fresh* process on the same directory, re-attach from the snapshot,
   and get byte-identical pairs and query answers;
3. every answer — before and after the restart — is byte-identical to a
   direct, never-served :class:`~repro.core.incremental.IncrementalJoin`
   that applied the same updates;
4. the server's own metrics (coalesce width, shed/queued counters)
   land in the ``--metrics-json`` artifact.

Every request/response crossing the wire is logged to
``requests.jsonl`` and a ``summary.json`` lands in ``--out`` so CI can
archive both.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py --out serve-smoke/
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro import JoinSpec
from repro.core.incremental import IncrementalJoin
from repro.serve import ServeClient

DIMS = 5
EPSILON = 0.2
BATCH_N = 150
N_BATCHES = 4
N_QUERIES = 32
COALESCE_WINDOW = 0.005

_PORT_LINE = re.compile(r"serving on 127\.0\.0\.1:(\d+) ")


class RequestLog:
    """Collects one JSON line per request/response pair crossing the wire."""

    def __init__(self):
        self.entries = []

    def add(self, phase: str, op: str, **fields):
        entry = {"phase": phase, "op": op, "t": time.time()}
        entry.update(fields)
        self.entries.append(entry)

    def write(self, path: str):
        with open(path, "w") as handle:
            for entry in self.entries:
                handle.write(json.dumps(entry) + "\n")


def start_server(out_dir: str, tag: str) -> tuple:
    """Boot ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--coalesce-window",
            str(COALESCE_WINDOW),
            "--metrics-json",
            os.path.join(out_dir, f"metrics_{tag}.json"),
            "--trace",
            os.path.join(out_dir, f"spans_{tag}.jsonl"),
        ],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = _PORT_LINE.search(line)
    if not match:
        proc.kill()
        raise AssertionError(f"{tag}: no port announcement, got {line!r}")
    return proc, int(match.group(1))


def make_updates():
    rng = np.random.default_rng(17)
    updates = []
    for index in range(N_BATCHES):
        updates.append(("insert", rng.random((BATCH_N, DIMS))))
        if index == 2:
            updates.append(("delete", list(range(30, 60))))
    return updates, rng.random((N_QUERIES, DIMS))


def oracle(updates) -> IncrementalJoin:
    session = IncrementalJoin(JoinSpec(epsilon=EPSILON))
    for op, payload in updates:
        if op == "insert":
            session.insert(payload)
        else:
            session.delete(payload)
    return session


def sorted_pairs(pairs: np.ndarray) -> np.ndarray:
    if len(pairs) == 0:
        return pairs
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


async def drive_first(port: int, index_dir: str, updates, queries, log) -> dict:
    """Phase 1: attach persisted tenant, stream updates, query, shut down."""
    async with await ServeClient.connect("127.0.0.1", port) as client:
        attached = await client.request(
            "attach", tenant="smoke", epsilon=EPSILON, path=index_dir
        )
        log.add("first", "attach", response=attached)
        for op, payload in updates:
            if op == "insert":
                ids = await client.insert("smoke", np.asarray(payload))
                log.add("first", "insert", n=int(len(ids)))
            else:
                removed = await client.delete("smoke", payload)
                log.add("first", "delete", removed=int(len(removed)))
        answers = await asyncio.gather(
            *[client.range_query("smoke", q) for q in queries]
        )
        for query_index, ids in enumerate(answers):
            log.add("first", "range_query", i=query_index, hits=int(len(ids)))
        pairs = await client.pairs("smoke")
        log.add("first", "pairs", count=int(len(pairs)))
        stats = await client.stats(tenant="smoke")
        log.add("first", "stats", response=stats)
        await client.shutdown()
        log.add("first", "shutdown")
    return {"answers": answers, "pairs": pairs, "stats": stats}


async def drive_second(port: int, index_dir: str, queries, log) -> dict:
    """Phase 2: fresh process, re-attach from snapshot, same questions."""
    async with await ServeClient.connect("127.0.0.1", port) as client:
        attached = await client.request("attach", tenant="smoke", path=index_dir)
        log.add("second", "attach", response=attached)
        answers = await asyncio.gather(
            *[client.range_query("smoke", q) for q in queries]
        )
        for query_index, ids in enumerate(answers):
            log.add("second", "range_query", i=query_index, hits=int(len(ids)))
        pairs = await client.pairs("smoke")
        log.add("second", "pairs", count=int(len(pairs)))
        await client.shutdown()
        log.add("second", "shutdown")
    return {"answers": answers, "pairs": pairs, "attached": attached}


def await_exit(proc: subprocess.Popen) -> None:
    """Wait for a clean exit; kill rather than hang if the server wedged."""
    try:
        proc.wait(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="serve-smoke")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    workdir = tempfile.mkdtemp(prefix="serve-smoke-")
    index_dir = os.path.join(workdir, "index")
    updates, queries = make_updates()
    log = RequestLog()
    try:
        proc, port = start_server(args.out, "first")
        try:
            first = asyncio.run(
                asyncio.wait_for(
                    drive_first(port, index_dir, updates, queries, log), 120
                )
            )
        finally:
            await_exit(proc)
        if proc.returncode != 0:
            raise AssertionError(f"first server exited {proc.returncode}")

        proc, port = start_server(args.out, "second")
        try:
            second = asyncio.run(
                asyncio.wait_for(drive_second(port, index_dir, queries, log), 120)
            )
        finally:
            await_exit(proc)
        if proc.returncode != 0:
            raise AssertionError(f"second server exited {proc.returncode}")

        # The restarted server answered from the snapshot + WAL alone;
        # both processes must agree with the never-served oracle.
        direct = oracle(updates)
        expected_pairs = sorted_pairs(direct.current_pairs())
        for tag, result in (("first", first), ("second", second)):
            if sorted_pairs(result["pairs"]).tobytes() != expected_pairs.tobytes():
                raise AssertionError(f"{tag}: served pairs diverged from direct")
            for query_index, query in enumerate(queries):
                expected = direct.range_query(query)
                got = result["answers"][query_index]
                if got.tobytes() != expected.tobytes():
                    raise AssertionError(
                        f"{tag}: query {query_index} diverged from direct"
                    )
        if second["attached"]["n_live"] != direct.n_live:
            raise AssertionError(
                f"re-attach recovered {second['attached']['n_live']} live "
                f"points, direct has {direct.n_live}"
            )

        metrics = json.load(open(os.path.join(args.out, "metrics_first.json")))
        width = metrics.get("serve.coalesce_width", {})
        if not width.get("count"):
            raise AssertionError(f"no coalesced batches recorded: {metrics}")

        log.write(os.path.join(args.out, "requests.jsonl"))
        summary = {
            "updates": len(updates),
            "queries": int(len(queries)),
            "pairs": int(len(expected_pairs)),
            "n_live": int(direct.n_live),
            "coalesce_width_max": width.get("max"),
            "server_requests": metrics.get("serve.requests", {}).get("value", 0),
            "shed": metrics.get("serve.shed", {}).get("value", 0),
            "queued": metrics.get("serve.queued", {}).get("value", 0),
        }
        with open(os.path.join(args.out, "summary.json"), "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(
            f"served {summary['server_requests']} requests across a restart: "
            f"{summary['pairs']} pairs and {summary['queries']} query answers "
            f"byte-identical to the direct session "
            f"(max coalesce width {summary['coalesce_width_max']})"
        )
        return 0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
