"""Joining a relation larger than memory.

The paper's external variant: the relation lives on (simulated) disk,
memory holds only a small fraction of it, and the join runs stripe by
stripe over the first dimension.  The report shows that the price of the
memory constraint is a handful of sequential passes — not a blow-up —
and the result is identical to the in-memory join.

Run with::

    python examples/external_memory_join.py
"""

from repro import JoinSpec, epsilon_kdb_self_join, external_self_join
from repro.datasets import gaussian_clusters
from repro.storage import PageStore

POINTS = 50_000
DIMS = 8
EPSILON = 0.04
MEMORY_FRACTION = 0.25  # hold only a quarter of the relation in memory
PAGE_ROWS = 256


def main() -> None:
    points = gaussian_clusters(POINTS, DIMS, clusters=15, sigma=0.05, seed=3)
    budget = int(POINTS * MEMORY_FRACTION)
    store = PageStore(page_rows=PAGE_ROWS)

    print(
        f"external self-join of {POINTS} points (d={DIMS}) with memory for "
        f"only {budget} points ({MEMORY_FRACTION:.0%})..."
    )
    report = external_self_join(
        points, JoinSpec(epsilon=EPSILON), memory_points=budget, store=store
    )

    data_pages = -(-POINTS // PAGE_ROWS)
    print(f"stripes:        {report.stripes}")
    print(f"peak memory:    {report.peak_memory_points} points "
          f"(budget respected: {report.budget_respected})")
    print(f"pages read:     {report.io.reads} "
          f"({report.io.reads / data_pages:.2f}x the relation)")
    print(f"pages written:  {report.io.writes}")
    print(f"pairs found:    {report.stats.pairs_emitted}")

    # Sanity: identical to the in-memory join.
    in_memory = epsilon_kdb_self_join(points, JoinSpec(epsilon=EPSILON))
    same = (
        report.pairs.shape == in_memory.pairs.shape
        and (report.pairs == in_memory.pairs).all()
    )
    print(f"matches the in-memory join exactly: {same}")


if __name__ == "__main__":
    main()
