"""Quickstart: the similarity-join API in five minutes.

Run with::

    python examples/quickstart.py
"""


from repro import (
    EpsilonKdbTree,
    JoinSpec,
    PairCounter,
    epsilon_kdb_self_join,
    similarity_join,
)
from repro.datasets import gaussian_clusters


def main() -> None:
    # A clustered 16-dimensional workload: the shape feature vectors
    # (DFT coefficients, color histograms, embeddings) actually have.
    points = gaussian_clusters(10_000, 16, clusters=12, sigma=0.04, seed=7)

    # 1. One call: all pairs within epsilon under L2.
    pairs = similarity_join(points, epsilon=0.1)
    print(f"self-join found {len(pairs)} pairs within eps=0.1")
    print(f"first few pairs: {pairs[:5].tolist()}")

    # 2. Choose the metric and algorithm explicitly.
    linf_pairs = similarity_join(
        points, epsilon=0.1, metric="linf", algorithm="epsilon-kdb"
    )
    print(f"under L-infinity the same eps admits {len(linf_pairs)} pairs")

    # 3. Two-relation join: which points of B are near points of A?
    other = gaussian_clusters(5_000, 16, clusters=12, sigma=0.04, seed=7) + 0.005
    rs_pairs = similarity_join(points, other, epsilon=0.1)
    print(f"R-against-S join found {len(rs_pairs)} cross pairs")

    # 4. The full machinery: build the tree once, inspect it, count
    #    without materializing, and read the work counters.
    spec = JoinSpec(epsilon=0.1, leaf_size=256)
    tree = EpsilonKdbTree.build(points, spec)
    info = tree.describe()
    print(
        f"eps-kdB tree: {info.leaves} leaves, depth {info.max_depth}, "
        f"{info.split_dims_used} of {info.dims} dimensions split"
    )
    counter = PairCounter()
    result = epsilon_kdb_self_join(points, spec, sink=counter, tree=tree)
    print(
        f"counted {counter.count} pairs with "
        f"{result.stats.distance_computations} distance computations "
        f"(vs {len(points) * (len(points) - 1) // 2} for brute force)"
    )


if __name__ == "__main__":
    main()
