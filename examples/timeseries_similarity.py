"""Finding similar time sequences — the paper's motivating application.

Uses the end-to-end pipeline in ``repro.apps.sequences`` (the classic
similar-sequences recipe):

1. generate a universe of stock-like price series (random walks with a
   sector structure, standing in for proprietary market data);
2. z-normalize each series and keep its leading DFT coefficients — a
   feature space whose distances provably lower-bound the true
   sequence distance, so the join never misses a match;
3. similarity-join the feature vectors with the eps-kdB tree;
4. verify candidates against the true distance.

The result is *exact*: every reported pair is within epsilon in
z-normalized Euclidean distance over the full series. As a sanity check
the example shows that matched pairs are strongly co-moving as raw
return series, while random pairs are not.

Run with::

    python examples/timeseries_similarity.py
"""

import numpy as np

from repro import find_similar_sequences
from repro.datasets import random_walk_series

SERIES = 4_000
LENGTH = 256
COEFFICIENTS = 8
EPSILON = 8.0  # on z-normalized sequences of length 256


def mean_return_correlation(series: np.ndarray, pairs: np.ndarray) -> float:
    """Mean Pearson correlation of the paired raw return series."""
    returns = np.diff(np.log(series), axis=1)
    centered = returns - returns.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    total = 0.0
    for left, right in pairs:
        total += float(
            centered[left] @ centered[right] / (norms[left] * norms[right])
        )
    return total / len(pairs)


def main() -> None:
    print(f"generating {SERIES} price series of length {LENGTH}...")
    series = random_walk_series(
        SERIES, LENGTH, families=20, family_mix=0.8, drift=0.0, seed=123
    )

    result = find_similar_sequences(
        series, epsilon=EPSILON, coefficients=COEFFICIENTS
    )
    print(
        f"matched {result.matches} pairs "
        f"(from {result.candidates} feature-join candidates; "
        f"candidate ratio {result.candidate_ratio:.2f}, "
        f"{result.join_stats.distance_computations} feature distance "
        f"computations)"
    )
    if result.matches == 0:
        print("no pairs at this threshold; try a larger EPSILON")
        return
    print(
        f"match distances: min {result.distances.min():.2f}, "
        f"median {np.median(result.distances):.2f}, "
        f"max {result.distances.max():.2f} (threshold {EPSILON})"
    )

    matched = mean_return_correlation(series, result.pairs)
    rng = np.random.default_rng(0)
    random_pairs = np.column_stack(
        [rng.integers(0, SERIES, 2000), rng.integers(0, SERIES, 2000)]
    )
    random_pairs = random_pairs[random_pairs[:, 0] != random_pairs[:, 1]]
    baseline = mean_return_correlation(series, random_pairs)
    print(
        f"mean return correlation: matched pairs {matched:+.3f} "
        f"vs random pairs {baseline:+.3f}"
    )
    if matched > baseline + 0.2:
        print("similar-shape pairs are strongly co-moving series, as expected")


if __name__ == "__main__":
    main()
