"""Similarity search: build the tree once, query it many times.

The join builds a throwaway ε-kdB tree per call, but the same structure
answers *range queries* (all points within ε of a query) — the other
workload the paper's applications need. This example compares querying
through the tree against a linear scan and against an R+-tree, on the
image-histogram workload.

Run with::

    python examples/similarity_search.py
"""

import time

import numpy as np

from repro import EpsilonKdbTree, JoinSpec
from repro.baselines import RPlusTree
from repro.datasets.images import color_histograms

IMAGES = 30_000
BINS = 32
EPSILON = 0.12
QUERIES = 200
METRIC = "l1"


def main() -> None:
    histograms = color_histograms(IMAGES, bins=BINS, seed=7)
    spec = JoinSpec(epsilon=EPSILON, metric=METRIC)

    started = time.perf_counter()
    tree = EpsilonKdbTree.build(histograms, spec)
    kdb_build = time.perf_counter() - started

    started = time.perf_counter()
    rplus = RPlusTree.bulk_load(histograms)
    rplus_build = time.perf_counter() - started

    rng = np.random.default_rng(11)
    queries = histograms[rng.choice(IMAGES, size=QUERIES, replace=False)]

    # Linear scan baseline.
    started = time.perf_counter()
    scan_hits = []
    for query in queries:
        diffs = np.abs(histograms - query).sum(axis=1)
        scan_hits.append(np.flatnonzero(diffs <= EPSILON))
    scan_time = time.perf_counter() - started

    # eps-kdB tree.
    started = time.perf_counter()
    kdb_hits = [tree.range_query(query) for query in queries]
    kdb_time = time.perf_counter() - started

    # R+-tree.
    started = time.perf_counter()
    rplus_hits = [
        rplus.range_query(query, EPSILON, spec.metric) for query in queries
    ]
    rplus_time = time.perf_counter() - started

    for name, hits in (("eps-kdB", kdb_hits), ("R+-tree", rplus_hits)):
        for got, want in zip(hits, scan_hits):
            assert got.tolist() == sorted(want.tolist()), f"{name} mismatch"
    total_hits = sum(len(h) for h in scan_hits)

    per = QUERIES
    print(f"{IMAGES} histograms, {QUERIES} queries, {total_hits} total hits")
    print(f"linear scan:  {scan_time / per * 1e3:7.2f} ms/query")
    print(
        f"eps-kdB tree: {kdb_time / per * 1e3:7.2f} ms/query "
        f"(+ {kdb_build:.2f}s build)  -> {scan_time / kdb_time:.1f}x scan"
    )
    print(
        f"R+-tree:      {rplus_time / per * 1e3:7.2f} ms/query "
        f"(+ {rplus_build:.2f}s build)  -> {scan_time / rplus_time:.1f}x scan"
    )
    print("all three agree on every query result")


if __name__ == "__main__":
    main()
