"""Near-duplicate image detection via color-histogram joins.

The second application the paper motivates: every image is a color
histogram over b bins; two images are near-duplicates when their
histograms are within epsilon under L1.  This example joins a synthetic
collection whose ground-truth scene labels are known, so the join's
precision (fraction of reported pairs that really are the same scene) is
measurable.

Run with::

    python examples/image_dedup.py
"""

import numpy as np

from repro import find_duplicate_images
from repro.datasets.images import color_histograms

IMAGES = 6_000
BINS = 32
SCENES = 15
EPSILON = 0.12


def main() -> None:
    histograms, labels = color_histograms(
        IMAGES,
        bins=BINS,
        scenes=SCENES,
        concentration=120.0,
        seed=42,
        return_labels=True,
    )

    print(f"joining {IMAGES} {BINS}-bin histograms at L1 eps={EPSILON}...")
    result = find_duplicate_images(histograms, epsilon=EPSILON, metric="l1")
    pairs = result.pairs
    print(f"found {len(pairs)} near-duplicate pairs")
    if len(pairs) == 0:
        print("no pairs; loosen EPSILON")
        return

    same_scene = labels[pairs[:, 0]] == labels[pairs[:, 1]]
    precision = float(same_scene.mean())
    base_rate = float(np.mean(labels[:, None] == labels[None, :200]))
    print(
        f"precision (same ground-truth scene): {precision:.1%} "
        f"(random-pair base rate ~{base_rate:.1%})"
    )

    # The output a curator would act on: duplicate groups, largest first.
    print(
        f"{len(result.groups)} duplicate groups covering "
        f"{result.duplicate_images} images; largest:"
    )
    for group in result.groups[:5]:
        scenes = sorted(set(labels[group]))
        preview = ", ".join(str(i) for i in group[:6])
        suffix = ", ..." if len(group) > 6 else ""
        print(
            f"  {len(group):4d} images (scene {scenes}): "
            f"[{preview}{suffix}]"
        )


if __name__ == "__main__":
    main()
